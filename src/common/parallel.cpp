#include "adaflow/common/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

namespace adaflow {

namespace {

/// Persistent pool: workers sleep until a job (function + iteration range) is
/// published, grab iterations via an atomic counter, then report completion.
class Pool {
 public:
  Pool() {
    unsigned n = std::thread::hardware_concurrency();
    if (n == 0) {
      n = 1;
    }
    // The caller thread also works, so spawn n-1 helpers.
    for (unsigned i = 1; i < n; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
    worker_count_ = static_cast<int>(n);
  }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      shutdown_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) {
      w.join();
    }
  }

  int worker_count() const { return worker_count_; }

  void run(std::int64_t count, const std::function<void(std::int64_t)>& fn) {
    if (count <= 0) {
      return;
    }
    if (count == 1 || workers_.empty()) {
      for (std::int64_t i = 0; i < count; ++i) {
        fn(i);
      }
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job_ = &fn;
      total_ = count;
      next_.store(0);
      remaining_.store(count);
      ++generation_;
    }
    cv_.notify_all();
    drain();  // the caller participates
    // Wait for stragglers still inside fn().
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return remaining_.load() == 0; });
    job_ = nullptr;
  }

 private:
  void drain() {
    while (true) {
      const std::int64_t i = next_.fetch_add(1);
      if (i >= total_) {
        return;
      }
      (*job_)(i);
      if (remaining_.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(mutex_);
        done_cv_.notify_all();
      }
    }
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    while (true) {
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [this, seen] { return shutdown_ || generation_ != seen; });
        if (shutdown_) {
          return;
        }
        seen = generation_;
      }
      drain();
    }
  }

  std::vector<std::thread> workers_;
  int worker_count_ = 1;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::int64_t)>* job_ = nullptr;
  std::int64_t total_ = 0;
  std::atomic<std::int64_t> next_{0};
  std::atomic<std::int64_t> remaining_{0};
  std::uint64_t generation_ = 0;
  bool shutdown_ = false;
};

Pool& pool() {
  static Pool p;
  return p;
}

}  // namespace

void parallel_for(std::int64_t count, const std::function<void(std::int64_t)>& fn) {
  pool().run(count, fn);
}

int parallel_worker_count() { return pool().worker_count(); }

}  // namespace adaflow
