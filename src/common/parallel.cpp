#include "adaflow/common/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

namespace adaflow {

namespace {

constexpr int kMaxWorkers = 512;

/// Persistent pool: workers sleep until a job (function + iteration range) is
/// published, grab iterations via an atomic counter, then report completion.
class Pool {
 public:
  explicit Pool(int n) { spawn(n); }

  ~Pool() { stop(); }

  int worker_count() const { return worker_count_; }

  /// Joins every worker and restarts the pool at \p n threads (including the
  /// caller). Callers guarantee no parallel_for is in flight.
  void resize(int n) {
    if (n == worker_count_) {
      return;
    }
    stop();
    spawn(n);
  }

  void run(std::int64_t count, const std::function<void(std::int64_t)>& fn) {
    if (count <= 0) {
      return;
    }
    if (count == 1 || workers_.empty()) {
      for (std::int64_t i = 0; i < count; ++i) {
        fn(i);
      }
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job_ = &fn;
      total_ = count;
      next_.store(0);
      remaining_.store(count);
      ++generation_;
    }
    cv_.notify_all();
    drain();  // the caller participates
    // Wait for stragglers still inside fn().
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return remaining_.load() == 0; });
    job_ = nullptr;
  }

 private:
  void spawn(int n) {
    if (n < 1) {
      n = 1;
    }
    if (n > kMaxWorkers) {
      n = kMaxWorkers;
    }
    // The caller thread also works, so spawn n-1 helpers. New workers start
    // at the current generation so a stale job is never re-drained.
    for (int i = 1; i < n; ++i) {
      workers_.emplace_back([this, g = generation_] { worker_loop(g); });
    }
    worker_count_ = n;
  }

  void stop() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      shutdown_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) {
      w.join();
    }
    workers_.clear();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      shutdown_ = false;
    }
    worker_count_ = 1;
  }

  void drain() {
    while (true) {
      const std::int64_t i = next_.fetch_add(1);
      if (i >= total_) {
        return;
      }
      (*job_)(i);
      if (remaining_.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(mutex_);
        done_cv_.notify_all();
      }
    }
  }

  void worker_loop(std::uint64_t seen) {
    while (true) {
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [this, seen] { return shutdown_ || generation_ != seen; });
        if (shutdown_) {
          return;
        }
        seen = generation_;
      }
      drain();
    }
  }

  std::vector<std::thread> workers_;
  int worker_count_ = 1;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::int64_t)>* job_ = nullptr;
  std::int64_t total_ = 0;
  std::atomic<std::int64_t> next_{0};
  std::atomic<std::int64_t> remaining_{0};
  std::uint64_t generation_ = 0;
  bool shutdown_ = false;
};

Pool& pool() {
  static Pool p(default_worker_count());
  return p;
}

}  // namespace

int default_worker_count() {
  if (const char* env = std::getenv("ADAFLOW_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1) {
      return v > kMaxWorkers ? kMaxWorkers : static_cast<int>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw > kMaxWorkers ? kMaxWorkers : hw);
}

void parallel_for(std::int64_t count, const std::function<void(std::int64_t)>& fn) {
  pool().run(count, fn);
}

int parallel_worker_count() { return pool().worker_count(); }

void set_worker_count(int workers) {
  pool().resize(workers <= 0 ? default_worker_count() : workers);
}

}  // namespace adaflow
