#pragma once

/// \file logging.hpp
/// Minimal leveled logger used by examples and benches for progress output.
/// Library code logs sparingly (warnings only); hot paths never log.

#include <sstream>
#include <string>

namespace adaflow {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits \p message to stderr when \p level passes the threshold.
void log(LogLevel level, const std::string& message);

namespace detail {
inline void format_into(std::ostringstream&) {}

template <typename T, typename... Rest>
void format_into(std::ostringstream& os, const T& value, const Rest&... rest) {
  os << value;
  format_into(os, rest...);
}
}  // namespace detail

/// Convenience: log_info("trained ", n, " models").
template <typename... Args>
void log_debug(const Args&... args) {
  if (log_level() <= LogLevel::kDebug) {
    std::ostringstream os;
    detail::format_into(os, args...);
    log(LogLevel::kDebug, os.str());
  }
}

template <typename... Args>
void log_info(const Args&... args) {
  if (log_level() <= LogLevel::kInfo) {
    std::ostringstream os;
    detail::format_into(os, args...);
    log(LogLevel::kInfo, os.str());
  }
}

template <typename... Args>
void log_warn(const Args&... args) {
  if (log_level() <= LogLevel::kWarn) {
    std::ostringstream os;
    detail::format_into(os, args...);
    log(LogLevel::kWarn, os.str());
  }
}

template <typename... Args>
void log_error(const Args&... args) {
  if (log_level() <= LogLevel::kError) {
    std::ostringstream os;
    detail::format_into(os, args...);
    log(LogLevel::kError, os.str());
  }
}

}  // namespace adaflow
