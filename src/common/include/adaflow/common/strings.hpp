#pragma once

/// \file strings.hpp
/// String formatting helpers used by the library table, benches and reports.

#include <string>
#include <vector>

namespace adaflow {

/// Formats \p value with \p decimals digits after the point ("1.38").
std::string format_double(double value, int decimals);

/// Formats a ratio as "1.38x".
std::string format_ratio(double value, int decimals = 2);

/// Formats a fraction (0..1) as a percentage string "27.2%".
std::string format_percent(double fraction, int decimals = 1);

/// Joins strings with a separator.
std::string join(const std::vector<std::string>& parts, const std::string& sep);

/// Left/right pads \p s with spaces to \p width.
std::string pad_right(const std::string& s, std::size_t width);
std::string pad_left(const std::string& s, std::size_t width);

}  // namespace adaflow
