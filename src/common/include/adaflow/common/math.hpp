#pragma once

/// \file math.hpp
/// Small integer/math helpers shared by the folding, pruning, and resource
/// models. All are header-only and constexpr where possible.

#include <cstdint>
#include <numeric>

#include "adaflow/common/error.hpp"

namespace adaflow {

/// Ceiling division for non-negative integers.
constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

/// Rounds \p value up to the next multiple of \p multiple (multiple > 0).
constexpr std::int64_t round_up(std::int64_t value, std::int64_t multiple) {
  return ceil_div(value, multiple) * multiple;
}

/// Rounds \p value down to the previous multiple of \p multiple.
constexpr std::int64_t round_down(std::int64_t value, std::int64_t multiple) {
  return (value / multiple) * multiple;
}

/// True when \p value is divisible by \p divisor (divisor > 0).
constexpr bool divisible(std::int64_t value, std::int64_t divisor) {
  return value % divisor == 0;
}

/// Least common multiple, guarding against zero operands.
inline std::int64_t lcm_positive(std::int64_t a, std::int64_t b) {
  require(a > 0 && b > 0, "lcm operands must be positive");
  return std::lcm(a, b);
}

/// Clamps \p value into [lo, hi].
template <typename T>
constexpr T clamp(T value, T lo, T hi) {
  return value < lo ? lo : (value > hi ? hi : value);
}

}  // namespace adaflow
