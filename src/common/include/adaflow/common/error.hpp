#pragma once

/// \file error.hpp
/// Error-handling primitives shared across all AdaFlow libraries.
///
/// AdaFlow uses exceptions for contract violations (programming errors,
/// malformed configurations) and throws only types derived from
/// adaflow::Error so callers can catch the whole family at API boundaries.

#include <stdexcept>
#include <string>

namespace adaflow {

/// Base class of every exception thrown by AdaFlow libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller-supplied configuration is inconsistent or out of range.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error("config error: " + what) {}
};

/// Tensor/layer shapes do not line up.
class ShapeError : public Error {
 public:
  explicit ShapeError(const std::string& what) : Error("shape error: " + what) {}
};

/// A dataflow folding constraint (PE/SIMD divisibility) is violated.
class FoldingError : public Error {
 public:
  explicit FoldingError(const std::string& what) : Error("folding error: " + what) {}
};

/// A requested entity (model version, accelerator, layer) does not exist.
class NotFoundError : public Error {
 public:
  explicit NotFoundError(const std::string& what) : Error("not found: " + what) {}
};

/// Throws ConfigError with \p message when \p condition is false.
void require(bool condition, const std::string& message);

}  // namespace adaflow
