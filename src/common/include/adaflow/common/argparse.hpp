#pragma once

/// \file argparse.hpp
/// Minimal command-line parser for the tools/ binaries: long options with
/// values (--rate 0.5 or --rate=0.5), boolean flags, and positionals.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace adaflow {

class ArgParser {
 public:
  ArgParser(std::string program, std::string description);

  /// Boolean flag (--name).
  void add_flag(const std::string& name, const std::string& help);

  /// Valued option (--name VALUE or --name=VALUE) with a default.
  void add_option(const std::string& name, const std::string& help,
                  const std::string& default_value = "");

  /// Positional argument, in declaration order.
  void add_positional(const std::string& name, const std::string& help, bool required = true);

  /// Parses argv (excluding the program name). Throws ConfigError on unknown
  /// options, missing values, or missing required positionals.
  void parse(const std::vector<std::string>& args);
  void parse(int argc, const char* const* argv);

  bool flag(const std::string& name) const;
  const std::string& option(const std::string& name) const;
  double option_double(const std::string& name) const;
  std::int64_t option_int(const std::string& name) const;
  /// option_double with a sign contract; both throw ConfigError naming the
  /// flag (e.g. "--probe-interval must be positive, got '-1'") so tools get
  /// uniform, testable validation of timeout/budget-style options.
  double option_positive_double(const std::string& name) const;
  double option_nonnegative_double(const std::string& name) const;
  const std::string& positional(const std::string& name) const;
  bool has(const std::string& name) const;  ///< option explicitly set?

  /// Usage text.
  std::string help() const;

 private:
  struct Option {
    std::string help;
    std::string value;
    bool is_flag = false;
    bool set = false;
  };
  struct Positional {
    std::string name;
    std::string help;
    bool required = true;
    std::string value;
    bool set = false;
  };

  const Option& find(const std::string& name) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<Positional> positionals_;
};

/// Splits "a,b,c" into parts.
std::vector<std::string> split(const std::string& s, char sep);

}  // namespace adaflow
