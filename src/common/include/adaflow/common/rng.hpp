#pragma once

/// \file rng.hpp
/// Deterministic random-number generation.
///
/// Every stochastic component in AdaFlow (dataset synthesis, weight
/// initialization, workload deviation, augmentation) draws from an explicit
/// Rng instance so that experiments are reproducible run-to-run and the
/// 100-repetition averages of the paper can be regenerated from seeds 0..99.

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace adaflow {

/// Deterministic pseudo-random source (thin wrapper over std::mt19937_64).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double uniform() { return unit_(engine_); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    std::uniform_int_distribution<std::int64_t> d(lo, hi);
    return d(engine_);
  }

  /// Standard normal sample scaled to \p stddev around \p mean.
  double normal(double mean = 0.0, double stddev = 1.0) {
    std::normal_distribution<double> d(mean, stddev);
    return d(engine_);
  }

  /// Bernoulli trial with success probability \p p.
  bool bernoulli(double p) {
    std::bernoulli_distribution d(p);
    return d(engine_);
  }

  /// Exponentially distributed sample with the given rate (events/unit time).
  double exponential(double rate) {
    std::exponential_distribution<double> d(rate);
    return d(engine_);
  }

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& values) {
    std::shuffle(values.begin(), values.end(), engine_);
  }

  /// Derives an independent child generator; used to give each simulated
  /// component its own stream without correlating draws.
  Rng fork();

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
};

}  // namespace adaflow
