#pragma once

/// \file table.hpp
/// Plain-text table printer used by benches to emit the paper's tables and
/// figure series in a stable, diff-friendly format.

#include <string>
#include <vector>

namespace adaflow {

/// Accumulates rows of cells and renders them with aligned columns.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Renders the table (header, separator, rows) as a single string.
  std::string render() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace adaflow
