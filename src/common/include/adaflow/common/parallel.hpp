#pragma once

/// \file parallel.hpp
/// A tiny persistent thread pool exposing parallel_for. Used by the training
/// substrate to spread conv/GEMM work over cores; everything else in AdaFlow
/// is single-threaded and deterministic.

#include <cstdint>
#include <functional>

namespace adaflow {

/// Runs fn(i) for i in [0, count) across the global worker pool. Blocks until
/// all iterations finish. fn must be safe to call concurrently for distinct i.
/// Falls back to a serial loop for small counts or when only one core exists.
void parallel_for(std::int64_t count, const std::function<void(std::int64_t)>& fn);

/// Number of workers in the global pool (>= 1).
int parallel_worker_count();

}  // namespace adaflow
