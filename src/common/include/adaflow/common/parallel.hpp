#pragma once

/// \file parallel.hpp
/// A tiny persistent thread pool exposing parallel_for. Used by the training
/// substrate to spread conv/GEMM work over cores, by run_repeated to run
/// independent simulation repetitions concurrently, and by the sharded fleet
/// engine (src/shard) to advance shards inside a conservative time window.
///
/// Worker-count policy: the pool starts at the ADAFLOW_THREADS environment
/// override when set (clamped to [1, 512]), else hardware_concurrency().
/// set_worker_count() resizes it at runtime — tests and benches use this to
/// prove thread-count invariance ({1, 4, hw} must produce bit-identical
/// simulation metrics).

#include <cstdint>
#include <functional>

namespace adaflow {

/// Runs fn(i) for i in [0, count) across the global worker pool. Blocks until
/// all iterations finish. fn must be safe to call concurrently for distinct i.
/// Falls back to a serial loop for small counts or when only one core exists.
void parallel_for(std::int64_t count, const std::function<void(std::int64_t)>& fn);

/// Number of workers in the global pool (>= 1).
int parallel_worker_count();

/// Resizes the global pool to \p workers threads (the calling thread counts
/// as one of them, so \p workers == 1 means fully serial). \p workers <= 0
/// resets to the default: the ADAFLOW_THREADS environment override when set,
/// else hardware_concurrency(). Values are clamped to [1, 512]. Must not be
/// called concurrently with parallel_for.
void set_worker_count(int workers);

/// The default worker count: ADAFLOW_THREADS (clamped to [1, 512]) when the
/// environment variable is set to a positive integer, else
/// hardware_concurrency() (>= 1). Malformed values are ignored.
int default_worker_count();

}  // namespace adaflow
