#include "adaflow/common/rng.hpp"

namespace adaflow {

Rng Rng::fork() {
  // Draw two words to decorrelate the child stream from subsequent parent use.
  const std::uint64_t a = engine_();
  const std::uint64_t b = engine_();
  return Rng(a ^ (b << 1) ^ 0x9e3779b97f4a7c15ULL);
}

}  // namespace adaflow
