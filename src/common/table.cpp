#include "adaflow/common/table.hpp"

#include <algorithm>

#include "adaflow/common/error.hpp"
#include "adaflow/common/strings.hpp"

namespace adaflow {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  require(!header_.empty(), "table header must not be empty");
}

void TextTable::add_row(std::vector<std::string> cells) {
  require(cells.size() == header_.size(), "table row arity mismatch");
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += pad_right(row[c], widths[c]);
      out += (c + 1 == row.size()) ? "\n" : "  ";
    }
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) {
    total += w + 2;
  }
  out += std::string(total > 2 ? total - 2 : total, '-');
  out += "\n";
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out;
}

}  // namespace adaflow
