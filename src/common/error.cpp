#include "adaflow/common/error.hpp"

namespace adaflow {

void require(bool condition, const std::string& message) {
  if (!condition) {
    throw ConfigError(message);
  }
}

}  // namespace adaflow
