#pragma once

/// \file runtime_manager.hpp
/// AdaFlow's Runtime Manager (paper Section IV-B2) plus the baselines it is
/// evaluated against.
///
/// Model selection: among the library versions whose accuracy stays within
/// the user's accuracy threshold of the unpruned model, pick the one with
/// the highest throughput; if several versions can match the incoming FPS,
/// pick the most accurate of those.
///
/// Accelerator-type selection (rule-based criteria): Fixed-Pruning is chosen
/// only when the time since the last model switch exceeds a predefined
/// multiple of the FPGA reconfiguration time (the paper uses 10x);
/// otherwise the Flexible-Pruning accelerator is used so the switch is fast.

#include <memory>
#include <optional>

#include "adaflow/core/library.hpp"
#include "adaflow/edge/policy.hpp"
#include "adaflow/hls/modules.hpp"

namespace adaflow::core {

struct RuntimeManagerConfig {
  /// Maximum tolerated absolute accuracy drop vs the unpruned model
  /// (paper: 10%).
  double accuracy_threshold = 0.10;
  /// Fixed-Pruning allowed only when the last model switch is older than
  /// factor * reconfig_time (paper: 10x).
  double switch_interval_factor = 10.0;
  /// Hysteresis: ignore incoming-FPS changes smaller than this fraction.
  double fps_hysteresis = 0.10;
  /// Headroom applied to the incoming-FPS estimate when matching models.
  double fps_margin = 1.10;
  /// Ignore polls before the monitor's rate estimate has a full window.
  double warmup_s = 0.5;
  /// Cooldown between decisions: after acting, wait for the estimate window
  /// to refill before acting again (avoids double-switching on stale data).
  double min_action_gap_s = 0.4;
  /// Extra headroom required before moving to a SLOWER (more accurate)
  /// model; asymmetric hysteresis that stops boundary flapping.
  double downswitch_margin = 1.2;
  /// After a reconfiguration fails for good, avoid Fixed-Pruning (i.e. force
  /// the Flexible safety net) for this long — a flaky PR controller must not
  /// be handed another bitstream immediately.
  double reconfig_failure_hold_s = 5.0;
};

/// The AdaFlow Runtime Manager, exposed as an edge serving policy.
class RuntimeManager final : public edge::ServingPolicy {
 public:
  RuntimeManager(const AcceleratorLibrary& library, RuntimeManagerConfig config);

  edge::ServingMode initial_mode() override;
  std::optional<edge::SwitchAction> on_poll(double now_s, double incoming_fps) override;
  void on_switch_applied(double now_s, const edge::ServingMode& mode) override;

  /// Self-healing: rolls the version/variant bookkeeping back to the mode
  /// that is actually live, and — when a Fixed-Pruning reconfiguration
  /// failed — answers with the paper's always-available safety net, the
  /// Flexible accelerator running the same target version. A failed fallback
  /// (or a failed fast switch) returns nullopt: stay on the live mode.
  std::optional<edge::SwitchAction> on_switch_failed(double now_s,
                                                     const edge::SwitchAction& action) override;

  /// Load shedding: when the server queue saturates, jump to the fastest
  /// version inside the accuracy threshold on the Flexible accelerator (a
  /// reconfiguration mid-overload would only deepen the backlog if avoidable).
  std::optional<edge::SwitchAction> on_overload(double now_s, double incoming_fps) override;

  /// The model-selection rule in isolation (unit-testable): returns the
  /// library index chosen for an incoming-FPS demand.
  std::size_t select_version(double incoming_fps) const;

  /// The type-selection rule in isolation.
  hls::AcceleratorVariant select_variant(double now_s) const;

  /// Lets the user change the accuracy threshold at runtime (paper: the
  /// manager re-acts on threshold changes).
  void set_accuracy_threshold(double threshold);

  /// Overrides the time-based accelerator-type rule: while set, every new
  /// switch targets \p pin (the reconfig-failure safety net still wins).
  /// nullopt restores the paper's switch-interval criterion. This is the
  /// hook the proactive layer drives from its changepoint/burst signal.
  void set_variant_pin(std::optional<hls::AcceleratorVariant> pin) { variant_pin_ = pin; }
  std::optional<hls::AcceleratorVariant> variant_pin() const { return variant_pin_; }

  std::size_t current_version() const { return current_version_; }
  hls::AcceleratorVariant current_variant() const { return current_variant_; }

 private:
  edge::ServingMode mode_for(std::size_t version, hls::AcceleratorVariant variant) const;

  const AcceleratorLibrary& library_;
  RuntimeManagerConfig config_;

  std::size_t current_version_ = 0;
  hls::AcceleratorVariant current_variant_ = hls::AcceleratorVariant::kFixed;
  std::optional<hls::AcceleratorVariant> variant_pin_;
  // What the hardware actually runs (differs from current_* only while a
  // switch is in flight; on_switch_failed rolls current_* back to it).
  std::size_t live_version_ = 0;
  hls::AcceleratorVariant live_variant_ = hls::AcceleratorVariant::kFixed;
  double last_model_switch_s_ = -1e18;   ///< time of the last applied switch
  double last_decision_s_ = -1e18;       ///< time of the last issued action
  double last_switch_failure_s_ = -1e18; ///< time of the last abandoned reconfig
  double last_acted_fps_ = -1.0;
  bool threshold_dirty_ = false;
};

/// Baseline: the original FINN accelerator, statically deployed (never
/// switches). Uses the unpruned version on its fixed accelerator.
class StaticFinnPolicy final : public edge::ServingPolicy {
 public:
  explicit StaticFinnPolicy(const AcceleratorLibrary& library) : library_(library) {}
  edge::ServingMode initial_mode() override;
  std::optional<edge::SwitchAction> on_poll(double, double) override { return std::nullopt; }

 private:
  const AcceleratorLibrary& library_;
};

/// Baseline for Fig. 1(b): model switching allowed, but every switch is an
/// FPGA reconfiguration of a Fixed-Pruning accelerator, with a configurable
/// reconfiguration time (0 models the ideal zero-cost switch).
class ReconfPruningPolicy final : public edge::ServingPolicy {
 public:
  ReconfPruningPolicy(const AcceleratorLibrary& library, RuntimeManagerConfig config,
                      double reconfig_time_s);
  edge::ServingMode initial_mode() override;
  std::optional<edge::SwitchAction> on_poll(double now_s, double incoming_fps) override;
  void on_switch_applied(double now_s, const edge::ServingMode& mode) override;

 private:
  const AcceleratorLibrary& library_;
  RuntimeManagerConfig config_;
  double reconfig_time_s_;
  std::size_t current_version_ = 0;
  double last_acted_fps_ = -1.0;
};

/// Shared model-selection rule (used by RuntimeManager and the
/// reconfiguration baseline): highest-throughput version within the accuracy
/// threshold, preferring the most accurate one that meets the demand.
std::size_t select_library_version(const AcceleratorLibrary& library, double incoming_fps,
                                   double accuracy_threshold, double fps_margin,
                                   bool use_flexible_fps);

/// The serving policies constructible from one library — the construction
/// path shared by the CLI `simulate`/`fleet` subcommands and the fleet
/// layer's per-device manager setup.
enum class PolicyKind {
  kAdaFlow,     ///< RuntimeManager (model + accelerator-type selection)
  kStaticFinn,  ///< original FINN baseline, never switches
  kReconfOnly,  ///< model switching via full reconfiguration only
  kProactive,   ///< forecast-driven RuntimeManager (proactive_manager.hpp)
};

const char* policy_kind_name(PolicyKind kind);

/// Parses "adaflow" | "finn" | "reconf" | "proactive"; throws NotFoundError
/// naming the valid spellings otherwise.
PolicyKind policy_kind_from_name(const std::string& name);

/// Builds one serving policy over \p library. The library (and, for
/// kAdaFlow/kReconfOnly, nothing else) is borrowed by reference and must
/// outlive the returned policy — fleet configs keep their libraries alive
/// for the whole simulation.
std::unique_ptr<edge::ServingPolicy> make_serving_policy(PolicyKind kind,
                                                         const AcceleratorLibrary& library,
                                                         const RuntimeManagerConfig& config);

}  // namespace adaflow::core
