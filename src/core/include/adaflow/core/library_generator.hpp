#pragma once

/// \file library_generator.hpp
/// AdaFlow's design-time step (paper Fig. 4, left): from an initial CNN model
/// + training dataset + FINN folding configuration, sweep the pruning rate,
/// retrain every pruned version, compile it for the dataflow, and record the
/// accuracy / throughput / resource / power profile of each version into the
/// AcceleratorLibrary consumed by the Runtime Manager.

#include <optional>
#include <string>
#include <vector>

#include "adaflow/core/library.hpp"
#include "adaflow/datasets/synthetic.hpp"
#include "adaflow/graph/graph.hpp"
#include "adaflow/fpga/device.hpp"
#include "adaflow/fpga/power.hpp"
#include "adaflow/fpga/reconfig.hpp"
#include "adaflow/hls/accelerator.hpp"
#include "adaflow/nn/cnv.hpp"
#include "adaflow/perf/perf.hpp"
#include "adaflow/pruning/prune.hpp"

namespace adaflow::core {

struct LibraryConfig {
  /// Pruning-rate sweep; the paper uses 0% to 85% in 5% steps (18 models).
  std::vector<double> rates = default_rates();
  int base_epochs = 8;       ///< initial-model training epochs
  int retrain_epochs = 3;    ///< post-pruning retraining (paper: 40 on GPU)
  float base_lr = 0.02f;
  float retrain_lr = 0.005f;
  std::int64_t batch_size = 32;
  std::uint64_t seed = 7;

  /// Folding is derived so the unpruned accelerator lands near this
  /// throughput at the device clock (the paper's CNV operating point).
  double target_base_fps = 450.0;

  /// Folding auto-tuning through the design-space explorer (src/dse). Off by
  /// default (the folding_for_target_fps heuristic is used). When on:
  ///  - the shared worst-case folding is the cheapest one sustaining
  ///    target_base_fps within tune_budget_fraction of the device
  ///    (min-resources objective, pruning-granularity constrained so the 5%
  ///    rate sweep stays fine-grained) — the Flexible accelerator ships it;
  ///  - every Fixed version gets a max-fps folding retuned to its pruned
  ///    channel counts under the unpruned Fixed accelerator's area (equal-area
  ///    dominance over the untuned library).
  /// Whenever a search is infeasible the generator logs a warning and falls
  /// back to the heuristic folding.
  bool tune_folding = false;
  double tune_budget_fraction = 0.8;     ///< device share for the shared folding
  double tune_prune_granularity = 0.25;  ///< cap on lcm(PE, SIMD_next) / ch_out
  int tune_beam = 8;                     ///< beam width for large lattices
  int tune_anneal_iters = 800;           ///< annealing refinement per search

  hls::InputQuantConfig input_quant;
  pruning::PruneOptions prune_options;
  fpga::ResourceModelConstants resource_constants = fpga::default_resource_constants();
  fpga::PowerModelConstants power_constants = fpga::default_power_constants();

  /// Relative toggle activity of unfed flexible logic: busy power on the
  /// flexible accelerator scales between this floor (everything pruned away)
  /// and 1.0 (worst-case model loaded), quadratically in the active fraction.
  double flexible_toggle_floor = 0.30;

  static std::vector<double> default_rates();
};

/// Library plus the design-time artifacts (kept for functional use:
/// examples run real inferences through these).
struct GeneratedLibrary {
  AcceleratorLibrary table;
  hls::FoldingConfig folding;
  nn::Model base_model;                         ///< trained unpruned model
  std::vector<hls::CompiledModel> compiled;     ///< one per version (same order)
};

class LibraryGenerator {
 public:
  LibraryGenerator(fpga::FpgaDevice device, LibraryConfig config)
      : device_(std::move(device)), config_(std::move(config)) {}

  /// Runs the full design-time flow for one (initial CNN, dataset) pair.
  /// Routed through the graph IR (from_cnv -> lower_model), so the produced
  /// table carries the topology hash; bit-identical to the pre-IR path.
  GeneratedLibrary generate(const nn::CnvTopology& topology,
                            const datasets::SyntheticDataset& dataset) const;

  /// Graph-IR entry point: lowers \p graph to a trainable model (linear
  /// chains only — branchy graphs take the geometry-based detection route in
  /// src/detect) and runs the full flow. The table's topology_hash is the
  /// graph's.
  GeneratedLibrary generate_graph(const graph::Graph& graph,
                                  const datasets::SyntheticDataset& dataset) const;

  /// Same flow for an arbitrary (untrained) initial model — e.g. the TFC
  /// fully-connected topology. Quantization precisions are derived from the
  /// model's first MVTU layer.
  GeneratedLibrary generate_from(nn::Model initial,
                                 const datasets::SyntheticDataset& dataset) const;

  const LibraryConfig& config() const { return config_; }

 private:
  fpga::FpgaDevice device_;
  LibraryConfig config_;
};

/// Cache wrapper: loads \p cache_path if present, otherwise generates the
/// library (table only) and saves it. Keeps bench start-up fast. The cache
/// is keyed on the topology hash: a cache whose hash differs from
/// \p topology's graph (or with a stale schema, or corrupt) is discarded
/// with a warning and transparently regenerated.
AcceleratorLibrary load_or_generate_library(const std::string& cache_path,
                                            const fpga::FpgaDevice& device,
                                            const LibraryConfig& config,
                                            const nn::CnvTopology& topology,
                                            const datasets::DatasetSpec& dataset_spec);

}  // namespace adaflow::core
