#pragma once

/// \file library.hpp
/// AdaFlow's Library (paper Section IV-B1): the design-time table of pruned
/// CNN model versions with their accuracy, throughput, resource and power
/// profiles, for both accelerator types — Fixed-Pruning (one accelerator per
/// version, switch = FPGA reconfiguration) and Flexible-Pruning (one
/// worst-case accelerator per initial CNN, fast model switch).

#include <cstdint>
#include <string>
#include <vector>

#include "adaflow/fpga/resources.hpp"
#include "adaflow/hls/folding.hpp"

namespace adaflow::core {

/// One pruned CNN model version (a row of the library table).
struct ModelVersion {
  std::string version;        ///< e.g. "CNVW2A2@p25"
  double requested_rate = 0;  ///< library sweep rate (0.00 .. 0.85)
  double achieved_rate = 0;   ///< after dataflow-aware adjustment
  double accuracy = 0;        ///< TOP-1 test accuracy after retraining

  // Performance (from the analytical dataflow model).
  double fps_fixed = 0;
  double fps_flexible = 0;
  double latency_fixed_s = 0;
  double latency_flexible_s = 0;

  // This version's own Fixed-Pruning accelerator. The folding is per-version:
  // the auto-tuner (src/dse) retunes PE/SIMD to the pruned channel counts;
  // without tuning every version carries the shared worst-case folding.
  hls::FoldingConfig folding_fixed;
  fpga::ResourceUsage resources_fixed;
  double power_busy_fixed_w = 0;
  double power_idle_fixed_w = 0;

  // Operating points on the shared Flexible-Pruning accelerator.
  double power_busy_flexible_w = 0;
  double power_idle_flexible_w = 0;
  double flexible_switch_time_s = 0;  ///< fast model-switch cost
};

/// The library of one (initial CNN, dataset) pair.
struct AcceleratorLibrary {
  std::string model_name;
  std::string dataset_name;
  /// graph::Graph::topology_hash() of the unpruned topology this library was
  /// generated from (0 = unknown/synthetic). Keys the TSV cache: a CNV cache
  /// can never be mistaken for a detection cache with the same path.
  std::uint64_t topology_hash = 0;
  double base_accuracy = 0;  ///< accuracy of the unpruned version
  double clock_hz = 100e6;
  double reconfig_time_s = 0;  ///< full FPGA reconfiguration

  fpga::ResourceUsage resources_finn;      ///< original FINN (fixed, unpruned)
  fpga::ResourceUsage resources_flexible;  ///< worst-case flexible accelerator
  hls::FoldingConfig folding_flexible;     ///< shared worst-case-feasible folding
  double finn_power_busy_w = 0;
  double finn_power_idle_w = 0;

  std::vector<ModelVersion> versions;  ///< ascending pruning rate; [0] unpruned

  const ModelVersion& unpruned() const;
  const ModelVersion& at_rate(double requested_rate) const;  ///< closest row
  std::size_t index_of(const std::string& version) const;
};

/// Hand-built library with monotone accuracy/FPS profiles, shaped like the
/// paper's CNV-on-ZCU104 table but requiring no training: version i runs at
/// base_fps * fps_growth^i with accuracy declining from base_accuracy. Used
/// by serving-layer tests, the fleet bench/example, and the CLI when no
/// generated library is supplied.
AcceleratorLibrary synthetic_library(int versions = 4, double base_fps = 500.0,
                                     double base_accuracy = 0.90,
                                     double reconfig_time_s = 0.145,
                                     double fps_growth = 1.45);

/// \p scale multiplies every FPS figure of \p library (both accelerator
/// types), modelling the same library deployed on a faster or slower FPGA —
/// the heterogeneous-fleet building block.
AcceleratorLibrary scale_library_fps(const AcceleratorLibrary& library, double scale);

/// Text (TSV) round-trip for caching generated libraries across bench runs.
/// The on-disk schema is versioned (header line "adaflow-library <version>");
/// load_library throws ConfigError on a missing magic, an older/unknown
/// schema version, or a truncated body — callers regenerate on that error.
void save_library(const AcceleratorLibrary& library, const std::string& path);
AcceleratorLibrary load_library(const std::string& path);
bool library_cache_exists(const std::string& path);

/// Renders the table the Library Generator produces (for examples/benches).
std::string render_library_table(const AcceleratorLibrary& library);

}  // namespace adaflow::core
