#pragma once

/// \file oracle_policy.hpp
/// Offline-optimal baseline (an extension beyond the paper): a policy that
/// sees the true workload trace — no estimation noise, no reaction lag — and
/// knows when the next rate change will occur, so its accelerator-type rule
/// uses real lookahead instead of the Runtime Manager's backward-looking
/// switch-interval heuristic. The gap between AdaFlow and this oracle is the
/// price of online operation.

#include "adaflow/core/library.hpp"
#include "adaflow/core/runtime_manager.hpp"
#include "adaflow/edge/policy.hpp"
#include "adaflow/edge/workload.hpp"

namespace adaflow::core {

class OraclePolicy final : public edge::ServingPolicy {
 public:
  /// \p trace must outlive the policy (the simulation owns it).
  OraclePolicy(const AcceleratorLibrary& library, RuntimeManagerConfig config,
               const edge::WorkloadTrace& trace);

  edge::ServingMode initial_mode() override;
  std::optional<edge::SwitchAction> on_poll(double now_s, double incoming_fps) override;

  /// Seconds until the workload rate next changes after \p now_s
  /// (+infinity after the last boundary). Exposed for tests.
  double time_to_next_change(double now_s) const;

 private:
  edge::ServingMode mode_for(std::size_t version, hls::AcceleratorVariant variant) const;

  const AcceleratorLibrary& library_;
  RuntimeManagerConfig config_;
  const edge::WorkloadTrace& trace_;

  std::size_t current_version_ = 0;
  hls::AcceleratorVariant current_variant_ = hls::AcceleratorVariant::kFixed;
};

}  // namespace adaflow::core
