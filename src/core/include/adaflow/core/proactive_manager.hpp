#pragma once

/// \file proactive_manager.hpp
/// Predictive front-end over the reactive Runtime Manager.
///
/// The reactive manager only sees the CURRENT incoming-FPS estimate, so every
/// adaptation happens after the workload has already shifted — and when the
/// switch lands on the Fixed accelerator it stalls the server for a full
/// ~145 ms reconfiguration right when the queue can least afford it. The
/// proactive manager feeds each monitor sample to an online forecaster and a
/// changepoint/burst detector, then drives the unchanged reactive core with
/// what the rate is PREDICTED to be one forecast horizon ahead:
///
///   (a) pre-arm Fixed: while the detector reports a stable regime, new
///       switches are pinned to the high-throughput Fixed accelerator without
///       waiting out the paper's time-since-last-switch rule;
///   (b) burst fallback: while changepoints arrive densely (paper
///       Scenario 2, flash-crowd ramps), switches are pinned to the Flexible
///       accelerator so no reconfiguration lands mid-burst, and the planning
///       demand is widened to the prediction-interval ceiling;
///   (c) observability: forecast error (MAPE, interval coverage) and the
///       per-window forecast-vs-actual series surface in RunMetrics.
///
/// Selection, hysteresis, fallback and overload machinery all stay in the
/// composed RuntimeManager — this layer only changes WHEN decisions happen
/// and WHICH accelerator variant they land on. Fully deterministic: state is
/// a pure function of the observation sequence.

#include <memory>
#include <optional>

#include "adaflow/core/runtime_manager.hpp"
#include "adaflow/forecast/tracker.hpp"

namespace adaflow::core {

struct ProactiveConfig {
  RuntimeManagerConfig manager;
  forecast::ForecastTrackerConfig forecast;
  /// Pre-arm Fixed once the detector has seen this many changepoint-free
  /// observations (ignored while a burst regime is active).
  int stable_pin_windows = 15;

  /// Throws ConfigError naming the offending field.
  void validate() const;
};

class ProactiveRuntimeManager final : public edge::ServingPolicy {
 public:
  ProactiveRuntimeManager(const AcceleratorLibrary& library, ProactiveConfig config);

  edge::ServingMode initial_mode() override;
  std::optional<edge::SwitchAction> on_poll(double now_s, double incoming_fps) override;
  void on_switch_applied(double now_s, const edge::ServingMode& mode) override;
  std::optional<edge::SwitchAction> on_switch_failed(double now_s,
                                                     const edge::SwitchAction& action) override;
  std::optional<edge::SwitchAction> on_overload(double now_s, double incoming_fps) override;
  edge::ForecastView forecast_view() const override;

  /// The demand estimate handed to the reactive core for the given
  /// observation state (unit-testable): the forecast-horizon rate, floored
  /// at the live estimate, widened to the interval ceiling during bursts.
  double planning_demand(double incoming_fps) const;

  const forecast::ForecastTracker& tracker() const { return tracker_; }
  const RuntimeManager& inner() const { return inner_; }

 private:
  ProactiveConfig config_;
  RuntimeManager inner_;
  forecast::ForecastTracker tracker_;
};

}  // namespace adaflow::core
