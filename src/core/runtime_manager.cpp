#include "adaflow/core/runtime_manager.hpp"

#include <cmath>

#include "adaflow/common/error.hpp"
#include "adaflow/core/proactive_manager.hpp"

namespace adaflow::core {

std::size_t select_library_version(const AcceleratorLibrary& library, double incoming_fps,
                                   double accuracy_threshold, double fps_margin,
                                   bool use_flexible_fps) {
  require(!library.versions.empty(), "empty library");
  const double accuracy_floor = library.base_accuracy - accuracy_threshold;
  const double demand = incoming_fps * fps_margin;

  auto fps_of = [&](const ModelVersion& v) {
    return use_flexible_fps ? v.fps_flexible : v.fps_fixed;
  };

  // Pass 1: among allowed versions that can match the demand, the most
  // accurate one (ties broken toward the lower pruning rate == earlier row).
  std::size_t best_matching = library.versions.size();
  double best_matching_acc = -1.0;
  // Pass 2 fallback: the fastest allowed version.
  std::size_t fastest = library.versions.size();
  double fastest_fps = -1.0;

  for (std::size_t i = 0; i < library.versions.size(); ++i) {
    const ModelVersion& v = library.versions[i];
    if (v.accuracy < accuracy_floor) {
      continue;
    }
    const double fps = fps_of(v);
    if (fps >= demand && v.accuracy > best_matching_acc) {
      best_matching_acc = v.accuracy;
      best_matching = i;
    }
    if (fps > fastest_fps) {
      fastest_fps = fps;
      fastest = i;
    }
  }
  if (best_matching != library.versions.size()) {
    return best_matching;
  }
  if (fastest != library.versions.size()) {
    return fastest;
  }
  // Nothing passes the accuracy threshold (degenerate config): fall back to
  // the unpruned model.
  return 0;
}

RuntimeManager::RuntimeManager(const AcceleratorLibrary& library, RuntimeManagerConfig config)
    : library_(library), config_(config) {
  require(config_.accuracy_threshold >= 0.0, "negative accuracy threshold");
  require(config_.switch_interval_factor >= 0.0, "negative switch interval factor");
  require(config_.reconfig_failure_hold_s >= 0.0, "negative reconfig failure hold");
  // Fail fast on broken library rows — a zero-FPS mode discovered mid-run
  // would otherwise surface as an inexplicable simulation error.
  require(!library_.versions.empty(), "empty library");
  for (const ModelVersion& v : library_.versions) {
    require(std::isfinite(v.fps_fixed) && v.fps_fixed > 0.0,
            "library version '" + v.version + "' has non-positive Fixed FPS");
    require(std::isfinite(v.fps_flexible) && v.fps_flexible > 0.0,
            "library version '" + v.version + "' has non-positive Flexible FPS");
  }
}

edge::ServingMode RuntimeManager::mode_for(std::size_t version,
                                           hls::AcceleratorVariant variant) const {
  const ModelVersion& v = library_.versions.at(version);
  edge::ServingMode mode;
  mode.model_version = v.version;
  if (variant == hls::AcceleratorVariant::kFixed) {
    mode.accelerator = "Fixed@" + v.version;
    mode.fps = v.fps_fixed;
    mode.power_busy_w = v.power_busy_fixed_w;
    mode.power_idle_w = v.power_idle_fixed_w;
  } else {
    mode.accelerator = "Flexible";
    mode.fps = v.fps_flexible;
    mode.power_busy_w = v.power_busy_flexible_w;
    mode.power_idle_w = v.power_idle_flexible_w;
  }
  mode.accuracy = v.accuracy;
  return mode;
}

edge::ServingMode RuntimeManager::initial_mode() {
  // Deployment starts on the unpruned model's Fixed accelerator — the same
  // hardware the Original FINN baseline runs, before any adaptation. The
  // environment is presumed stable until proven otherwise, so the first
  // needed switch may use a Fixed accelerator.
  current_version_ = 0;
  current_variant_ = hls::AcceleratorVariant::kFixed;
  live_version_ = 0;
  live_variant_ = hls::AcceleratorVariant::kFixed;
  last_model_switch_s_ = -1e18;
  last_switch_failure_s_ = -1e18;
  return mode_for(current_version_, current_variant_);
}

std::size_t RuntimeManager::select_version(double incoming_fps) const {
  return select_library_version(library_, incoming_fps, config_.accuracy_threshold,
                                config_.fps_margin,
                                current_variant_ == hls::AcceleratorVariant::kFlexible);
}

hls::AcceleratorVariant RuntimeManager::select_variant(double now_s) const {
  // A recently failed reconfiguration pins the choice to the Flexible safety
  // net: the PR controller gets a cool-off before another bitstream load.
  if (now_s - last_switch_failure_s_ < config_.reconfig_failure_hold_s) {
    return hls::AcceleratorVariant::kFlexible;
  }
  if (variant_pin_.has_value()) {
    return *variant_pin_;  // proactive layer overrides the time-based rule
  }
  const double interval = config_.switch_interval_factor * library_.reconfig_time_s;
  return (now_s - last_model_switch_s_) >= interval ? hls::AcceleratorVariant::kFixed
                                                    : hls::AcceleratorVariant::kFlexible;
}

void RuntimeManager::set_accuracy_threshold(double threshold) {
  require(threshold >= 0.0, "negative accuracy threshold");
  config_.accuracy_threshold = threshold;
  threshold_dirty_ = true;
}

std::optional<edge::SwitchAction> RuntimeManager::on_poll(double now_s, double incoming_fps) {
  if (now_s < config_.warmup_s) {
    return std::nullopt;  // the monitor's estimate window is still filling
  }
  if (now_s - last_decision_s_ < config_.min_action_gap_s) {
    return std::nullopt;  // estimate still contains pre-switch traffic
  }
  // The manager acts on workload changes (and threshold changes); small
  // estimate jitter is filtered out.
  if (!threshold_dirty_ && last_acted_fps_ > 0.0) {
    const double rel = std::fabs(incoming_fps - last_acted_fps_) / last_acted_fps_;
    if (rel < config_.fps_hysteresis) {
      return std::nullopt;
    }
  }
  threshold_dirty_ = false;

  const std::size_t target = select_version(incoming_fps);
  last_acted_fps_ = incoming_fps;
  if (target == current_version_) {
    return std::nullopt;
  }

  // Stickiness: if the current version still serves the demand within the
  // accuracy threshold, only move for a meaningful accuracy win — the
  // estimate noise of a Poisson arrival stream must not thrash the FPGA.
  const ModelVersion& cur = library_.versions.at(current_version_);
  const ModelVersion& tgt = library_.versions.at(target);
  const double cur_fps = current_variant_ == hls::AcceleratorVariant::kFlexible
                             ? cur.fps_flexible
                             : cur.fps_fixed;
  const bool current_adequate =
      cur_fps >= incoming_fps * config_.fps_margin &&
      cur.accuracy >= library_.base_accuracy - config_.accuracy_threshold;
  if (current_adequate && tgt.accuracy <= cur.accuracy + 0.005) {
    return std::nullopt;
  }
  // Asymmetric hysteresis: moving to a slower-but-more-accurate model needs
  // extra headroom, or boundary noise flip-flops between adjacent versions.
  if (current_adequate && tgt.fps_fixed < cur.fps_fixed &&
      tgt.fps_fixed < incoming_fps * config_.fps_margin * config_.downswitch_margin) {
    return std::nullopt;
  }

  const hls::AcceleratorVariant variant = select_variant(now_s);
  edge::SwitchAction action;
  action.target = mode_for(target, variant);
  if (variant == hls::AcceleratorVariant::kFixed) {
    // Loading a different Fixed bitstream is always a reconfiguration.
    action.switch_time_s = library_.reconfig_time_s;
    action.is_reconfiguration = true;
  } else if (current_variant_ == hls::AcceleratorVariant::kFlexible) {
    // Fast in-place model switch.
    action.switch_time_s = library_.versions.at(target).flexible_switch_time_s;
    action.is_reconfiguration = false;
  } else {
    // "Change of Dataflow": one reconfiguration to bring in the Flexible
    // accelerator, after which switches are fast.
    action.switch_time_s = library_.reconfig_time_s;
    action.is_reconfiguration = true;
  }

  current_version_ = target;
  current_variant_ = variant;
  last_decision_s_ = now_s;
  return action;
}

void RuntimeManager::on_switch_applied(double now_s, const edge::ServingMode& mode) {
  last_model_switch_s_ = now_s;
  live_variant_ = mode.accelerator == "Flexible" ? hls::AcceleratorVariant::kFlexible
                                                 : hls::AcceleratorVariant::kFixed;
  live_version_ = library_.index_of(mode.model_version);
}

std::optional<edge::SwitchAction> RuntimeManager::on_switch_failed(
    double now_s, const edge::SwitchAction& action) {
  // The advertised mode never went live: roll the bookkeeping back so future
  // decisions reason from the hardware's actual state instead of silently
  // assuming the failed target.
  current_version_ = live_version_;
  current_variant_ = live_variant_;
  last_acted_fps_ = -1.0;  // force a re-evaluation on the next poll
  if (!action.is_reconfiguration) {
    return std::nullopt;  // a fast switch failed; nothing cheaper exists
  }
  last_switch_failure_s_ = now_s;
  if (action.target.accelerator == "Flexible") {
    return std::nullopt;  // the safety net itself failed to load; stay put
  }
  // Fixed-Pruning reconfiguration failed: fall back to the same model version
  // on the Flexible accelerator — fast if Flexible is already loaded, one
  // "Change of Dataflow" reconfiguration otherwise.
  const std::size_t version = library_.index_of(action.target.model_version);
  edge::SwitchAction fallback;
  fallback.target = mode_for(version, hls::AcceleratorVariant::kFlexible);
  if (live_variant_ == hls::AcceleratorVariant::kFlexible) {
    fallback.switch_time_s = library_.versions.at(version).flexible_switch_time_s;
    fallback.is_reconfiguration = false;
  } else {
    fallback.switch_time_s = library_.reconfig_time_s;
    fallback.is_reconfiguration = true;
  }
  current_version_ = version;
  current_variant_ = hls::AcceleratorVariant::kFlexible;
  last_decision_s_ = now_s;
  return fallback;
}

std::optional<edge::SwitchAction> RuntimeManager::on_overload(double now_s, double incoming_fps) {
  if (now_s - last_decision_s_ < config_.min_action_gap_s) {
    return std::nullopt;  // an action is already in flight or just applied
  }
  // The queue is saturating: find the fastest version inside the accuracy
  // threshold and shed load onto it, regardless of the accuracy preference
  // the normal selection rule would apply.
  const double accuracy_floor = library_.base_accuracy - config_.accuracy_threshold;
  std::size_t fastest = current_version_;
  double fastest_fps = -1.0;
  for (std::size_t i = 0; i < library_.versions.size(); ++i) {
    const ModelVersion& v = library_.versions[i];
    if (v.accuracy < accuracy_floor) {
      continue;
    }
    if (v.fps_flexible > fastest_fps) {
      fastest_fps = v.fps_flexible;
      fastest = i;
    }
  }
  if (fastest == current_version_ &&
      current_variant_ == hls::AcceleratorVariant::kFlexible) {
    return std::nullopt;  // already draining as fast as the library allows
  }
  if (fastest == current_version_ && current_variant_ == hls::AcceleratorVariant::kFixed &&
      library_.versions.at(fastest).fps_fixed >= fastest_fps) {
    return std::nullopt;  // the Fixed variant of the same version is no slower
  }
  edge::SwitchAction action;
  action.target = mode_for(fastest, hls::AcceleratorVariant::kFlexible);
  if (current_variant_ == hls::AcceleratorVariant::kFlexible) {
    action.switch_time_s = library_.versions.at(fastest).flexible_switch_time_s;
    action.is_reconfiguration = false;
  } else {
    action.switch_time_s = library_.reconfig_time_s;
    action.is_reconfiguration = true;
  }
  current_version_ = fastest;
  current_variant_ = hls::AcceleratorVariant::kFlexible;
  last_decision_s_ = now_s;
  last_acted_fps_ = incoming_fps;
  return action;
}

edge::ServingMode StaticFinnPolicy::initial_mode() {
  const ModelVersion& v = library_.unpruned();
  edge::ServingMode mode;
  mode.model_version = v.version;
  mode.accelerator = "OriginalFINN";
  mode.fps = v.fps_fixed;
  mode.accuracy = v.accuracy;
  mode.power_busy_w = library_.finn_power_busy_w;
  mode.power_idle_w = library_.finn_power_idle_w;
  return mode;
}

ReconfPruningPolicy::ReconfPruningPolicy(const AcceleratorLibrary& library,
                                         RuntimeManagerConfig config, double reconfig_time_s)
    : library_(library), config_(config), reconfig_time_s_(reconfig_time_s) {}

edge::ServingMode ReconfPruningPolicy::initial_mode() {
  current_version_ = 0;
  const ModelVersion& v = library_.unpruned();
  edge::ServingMode mode;
  mode.model_version = v.version;
  mode.accelerator = "Fixed@" + v.version;
  mode.fps = v.fps_fixed;
  mode.accuracy = v.accuracy;
  mode.power_busy_w = v.power_busy_fixed_w;
  mode.power_idle_w = v.power_idle_fixed_w;
  return mode;
}

std::optional<edge::SwitchAction> ReconfPruningPolicy::on_poll(double now_s,
                                                               double incoming_fps) {
  if (now_s < config_.warmup_s) {
    return std::nullopt;
  }
  if (last_acted_fps_ > 0.0) {
    const double rel = std::fabs(incoming_fps - last_acted_fps_) / last_acted_fps_;
    if (rel < config_.fps_hysteresis) {
      return std::nullopt;
    }
  }
  const std::size_t target = select_library_version(
      library_, incoming_fps, config_.accuracy_threshold, config_.fps_margin,
      /*use_flexible_fps=*/false);
  last_acted_fps_ = incoming_fps;
  if (target == current_version_) {
    return std::nullopt;
  }
  const ModelVersion& cur = library_.versions.at(current_version_);
  const bool current_adequate =
      cur.fps_fixed >= incoming_fps * config_.fps_margin &&
      cur.accuracy >= library_.base_accuracy - config_.accuracy_threshold;
  if (current_adequate &&
      library_.versions.at(target).accuracy <= cur.accuracy + 0.005) {
    return std::nullopt;
  }
  current_version_ = target;
  const ModelVersion& v = library_.versions.at(target);
  edge::SwitchAction action;
  action.target.model_version = v.version;
  action.target.accelerator = "Fixed@" + v.version;
  action.target.fps = v.fps_fixed;
  action.target.accuracy = v.accuracy;
  action.target.power_busy_w = v.power_busy_fixed_w;
  action.target.power_idle_w = v.power_idle_fixed_w;
  action.switch_time_s = reconfig_time_s_;
  action.is_reconfiguration = reconfig_time_s_ > 0.0;
  return action;
}

void ReconfPruningPolicy::on_switch_applied(double, const edge::ServingMode&) {}

const char* policy_kind_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kAdaFlow:
      return "adaflow";
    case PolicyKind::kStaticFinn:
      return "finn";
    case PolicyKind::kReconfOnly:
      return "reconf";
    case PolicyKind::kProactive:
      return "proactive";
  }
  return "?";
}

PolicyKind policy_kind_from_name(const std::string& name) {
  if (name == "adaflow") {
    return PolicyKind::kAdaFlow;
  }
  if (name == "finn") {
    return PolicyKind::kStaticFinn;
  }
  if (name == "reconf") {
    return PolicyKind::kReconfOnly;
  }
  if (name == "proactive") {
    return PolicyKind::kProactive;
  }
  throw NotFoundError("unknown policy '" + name + "' (adaflow, finn, reconf, proactive)");
}

std::unique_ptr<edge::ServingPolicy> make_serving_policy(PolicyKind kind,
                                                         const AcceleratorLibrary& library,
                                                         const RuntimeManagerConfig& config) {
  switch (kind) {
    case PolicyKind::kAdaFlow:
      return std::make_unique<RuntimeManager>(library, config);
    case PolicyKind::kStaticFinn:
      return std::make_unique<StaticFinnPolicy>(library);
    case PolicyKind::kReconfOnly:
      return std::make_unique<ReconfPruningPolicy>(library, config, library.reconfig_time_s);
    case PolicyKind::kProactive: {
      ProactiveConfig proactive;
      proactive.manager = config;
      return std::make_unique<ProactiveRuntimeManager>(library, proactive);
    }
  }
  throw ConfigError("unhandled PolicyKind");
}

}  // namespace adaflow::core
