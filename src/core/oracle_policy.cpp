#include "adaflow/core/oracle_policy.hpp"

#include <algorithm>
#include <limits>

namespace adaflow::core {

OraclePolicy::OraclePolicy(const AcceleratorLibrary& library, RuntimeManagerConfig config,
                           const edge::WorkloadTrace& trace)
    : library_(library), config_(config), trace_(trace) {}

edge::ServingMode OraclePolicy::mode_for(std::size_t version,
                                         hls::AcceleratorVariant variant) const {
  const ModelVersion& v = library_.versions.at(version);
  edge::ServingMode mode;
  mode.model_version = v.version;
  mode.accuracy = v.accuracy;
  if (variant == hls::AcceleratorVariant::kFixed) {
    mode.accelerator = "Fixed@" + v.version;
    mode.fps = v.fps_fixed;
    mode.power_busy_w = v.power_busy_fixed_w;
    mode.power_idle_w = v.power_idle_fixed_w;
  } else {
    mode.accelerator = "Flexible";
    mode.fps = v.fps_flexible;
    mode.power_busy_w = v.power_busy_flexible_w;
    mode.power_idle_w = v.power_idle_flexible_w;
  }
  return mode;
}

double OraclePolicy::time_to_next_change(double now_s) const {
  const std::vector<double>& times = trace_.change_times();
  auto it = std::upper_bound(times.begin(), times.end(), now_s);
  if (it == times.end()) {
    return std::numeric_limits<double>::infinity();
  }
  return *it - now_s;
}

edge::ServingMode OraclePolicy::initial_mode() {
  // The oracle deploys the ideal version for the true initial rate directly.
  current_version_ = select_library_version(library_, trace_.rate_at(0.0),
                                            config_.accuracy_threshold, config_.fps_margin,
                                            /*use_flexible_fps=*/false);
  current_variant_ = hls::AcceleratorVariant::kFixed;
  return mode_for(current_version_, current_variant_);
}

std::optional<edge::SwitchAction> OraclePolicy::on_poll(double now_s, double /*estimate*/) {
  const double true_rate = trace_.rate_at(now_s);
  const std::size_t target =
      select_library_version(library_, true_rate, config_.accuracy_threshold, config_.fps_margin,
                             current_variant_ == hls::AcceleratorVariant::kFlexible);
  if (target == current_version_) {
    return std::nullopt;
  }

  // Lookahead type rule: a Fixed reconfiguration only pays off when the
  // workload will hold still long enough.
  const double stable_for = time_to_next_change(now_s);
  const hls::AcceleratorVariant variant =
      stable_for >= config_.switch_interval_factor * library_.reconfig_time_s
          ? hls::AcceleratorVariant::kFixed
          : hls::AcceleratorVariant::kFlexible;

  edge::SwitchAction action;
  action.target = mode_for(target, variant);
  if (variant == hls::AcceleratorVariant::kFixed) {
    action.switch_time_s = library_.reconfig_time_s;
    action.is_reconfiguration = true;
  } else if (current_variant_ == hls::AcceleratorVariant::kFlexible) {
    action.switch_time_s = library_.versions.at(target).flexible_switch_time_s;
    action.is_reconfiguration = false;
  } else {
    action.switch_time_s = library_.reconfig_time_s;
    action.is_reconfiguration = true;
  }
  current_version_ = target;
  current_variant_ = variant;
  return action;
}

}  // namespace adaflow::core
