#include "adaflow/core/proactive_manager.hpp"

#include <algorithm>

#include "adaflow/common/error.hpp"

namespace adaflow::core {

void ProactiveConfig::validate() const {
  forecast.validate();
  require(stable_pin_windows >= 1, "proactive stable_pin_windows must be >= 1, got " +
                                       std::to_string(stable_pin_windows));
}

ProactiveRuntimeManager::ProactiveRuntimeManager(const AcceleratorLibrary& library,
                                                 ProactiveConfig config)
    : config_(config), inner_(library, config.manager), tracker_(config.forecast) {
  config_.validate();
}

edge::ServingMode ProactiveRuntimeManager::initial_mode() {
  tracker_.reset();
  inner_.set_variant_pin(std::nullopt);
  return inner_.initial_mode();
}

double ProactiveRuntimeManager::planning_demand(double incoming_fps) const {
  // The forecaster needs two observations before a trend exists; until then
  // the live estimate is all there is.
  if (tracker_.forecaster().observations() < 2) {
    return incoming_fps;
  }
  const forecast::Forecast& f = tracker_.current();
  // Flooring at the live estimate makes the predictive path strictly more
  // cautious than the reactive one: a predicted rise is acted on early, a
  // predicted fall is still only acted on once it materializes (downswitching
  // on a forecast would trade accuracy-seconds for nothing).
  const double predicted = tracker_.burst() ? f.upper : f.rate;
  return std::max(incoming_fps, predicted);
}

std::optional<edge::SwitchAction> ProactiveRuntimeManager::on_poll(double now_s,
                                                                   double incoming_fps) {
  tracker_.observe(incoming_fps);
  if (tracker_.burst()) {
    // Dense changepoints: no reconfiguration must land mid-burst.
    inner_.set_variant_pin(hls::AcceleratorVariant::kFlexible);
  } else if (tracker_.stable_windows() >= config_.stable_pin_windows) {
    // Predicted-stable regime: pre-arm the high-throughput Fixed accelerator
    // without waiting out the time-since-last-switch rule.
    inner_.set_variant_pin(hls::AcceleratorVariant::kFixed);
  } else {
    // Recent isolated changepoint: fall back to the paper's time-based rule.
    inner_.set_variant_pin(std::nullopt);
  }
  return inner_.on_poll(now_s, planning_demand(incoming_fps));
}

void ProactiveRuntimeManager::on_switch_applied(double now_s, const edge::ServingMode& mode) {
  inner_.on_switch_applied(now_s, mode);
}

std::optional<edge::SwitchAction> ProactiveRuntimeManager::on_switch_failed(
    double now_s, const edge::SwitchAction& action) {
  return inner_.on_switch_failed(now_s, action);
}

std::optional<edge::SwitchAction> ProactiveRuntimeManager::on_overload(double now_s,
                                                                       double incoming_fps) {
  return inner_.on_overload(now_s, incoming_fps);
}

edge::ForecastView ProactiveRuntimeManager::forecast_view() const {
  edge::ForecastView view;
  view.stats = &tracker_.stats();
  view.actual = &tracker_.actual_series();
  view.predicted = &tracker_.forecast_series();
  return view;
}

}  // namespace adaflow::core
