#include "adaflow/core/library_generator.hpp"

#include <cmath>

#include "adaflow/common/logging.hpp"
#include "adaflow/common/strings.hpp"
#include "adaflow/nn/trainer.hpp"
#include "adaflow/pruning/prune.hpp"

namespace adaflow::core {

std::vector<double> LibraryConfig::default_rates() {
  std::vector<double> rates;
  for (int p = 0; p <= 85; p += 5) {
    rates.push_back(static_cast<double>(p) / 100.0);
  }
  return rates;
}

namespace {

std::string version_name(const std::string& model, double rate) {
  return model + "@p" + std::to_string(static_cast<int>(std::llround(rate * 100)));
}

}  // namespace

GeneratedLibrary LibraryGenerator::generate(const nn::CnvTopology& topology,
                                            const datasets::SyntheticDataset& dataset) const {
  return generate_from(nn::build_cnv(topology, config_.seed), dataset);
}

GeneratedLibrary LibraryGenerator::generate_from(nn::Model base,
                                                 const datasets::SyntheticDataset& dataset) const {
  require(!config_.rates.empty(), "library needs at least one pruning rate");
  require(config_.rates.front() == 0.0, "the first library rate must be 0 (the unpruned model)");

  // 1. Train the initial model (quantization-aware, Brevitas substitute).
  {
    nn::TrainConfig tc;
    tc.epochs = config_.base_epochs;
    tc.lr = config_.base_lr;
    tc.batch_size = config_.batch_size;
    tc.lr_decay_epochs = {config_.base_epochs * 3 / 4};
    tc.seed = config_.seed;
    nn::Trainer(tc).fit(base, dataset.train);
  }

  // Accuracy is evaluated on images snapped to the accelerator's input grid,
  // i.e. exactly what the FPGA sees.
  const nn::LabeledData snapped_test{
      hls::snap_to_input_grid(dataset.test.images, config_.input_quant), dataset.test.labels};

  // 2. Folding for the worst case (unpruned) model at the target throughput.
  const hls::FoldingConfig folding =
      hls::folding_for_target_fps(base, config_.target_base_fps, device_.clock_hz);
  hls::validate_folding(base, folding);

  const std::vector<hls::MvtuLayerDesc> mvtu_layers = hls::enumerate_mvtu_layers(base);
  require(!mvtu_layers.empty(), "initial model has no MVTU layers");
  const int weight_bits = mvtu_layers.front().weight_bits;
  const int act_bits = mvtu_layers.front().act_bits;

  GeneratedLibrary out;
  out.folding = folding;
  out.table.model_name = base.name();
  out.table.dataset_name = dataset.spec.name;
  out.table.clock_hz = device_.clock_hz;

  const fpga::PowerModel power(device_, config_.power_constants);
  const fpga::ReconfigModel reconfig(device_);
  out.table.reconfig_time_s = reconfig.full_reconfig_seconds();

  // 3. Sweep pruning rates: prune -> retrain -> evaluate -> compile -> model
  //    performance/resources/power for both accelerator types.
  hls::CompiledModel worstcase_compiled;
  for (double rate : config_.rates) {
    // Pruning at 0% yields a structural copy of the base model.
    pruning::PruneResult pr = pruning::dataflow_aware_prune(base, folding, rate, config_.prune_options);
    const double achieved = pr.achieved_rate;
    nn::Model version_model = std::move(pr.model);
    if (rate > 0.0) {
      nn::TrainConfig tc;
      tc.epochs = config_.retrain_epochs;
      tc.lr = config_.retrain_lr;
      tc.batch_size = config_.batch_size;
      if (config_.retrain_epochs > 1) {
        tc.lr_decay_epochs = {config_.retrain_epochs - 1};
      }
      tc.seed = config_.seed + static_cast<std::uint64_t>(std::llround(rate * 100));
      nn::Trainer(tc).fit(version_model, dataset.train);
    }
    version_model.set_name(version_name(out.table.model_name, rate));

    ModelVersion v;
    v.version = version_model.name();
    v.requested_rate = rate;
    v.achieved_rate = achieved;
    v.accuracy = nn::Trainer::evaluate(version_model, snapped_test);

    hls::CompiledModel compiled =
        hls::compile_model(version_model, rate, config_.input_quant);
    compiled.accuracy = v.accuracy;
    if (rate == 0.0) {
      worstcase_compiled = compiled;
    }

    // Performance on both accelerator types.
    const perf::PerfReport fixed_perf =
        perf::analyze(compiled, folding, hls::AcceleratorVariant::kFixed, device_.clock_hz);
    const perf::PerfReport flex_perf =
        perf::analyze(compiled, folding, hls::AcceleratorVariant::kFlexible, device_.clock_hz);
    v.fps_fixed = fixed_perf.fps;
    v.fps_flexible = flex_perf.fps;
    v.latency_fixed_s = fixed_perf.latency_s;
    v.latency_flexible_s = flex_perf.latency_s;

    // This version's Fixed-Pruning accelerator.
    v.resources_fixed =
        fpga::accelerator_resources(compiled, folding, hls::AcceleratorVariant::kFixed,
                                    weight_bits, act_bits, config_.resource_constants);
    v.power_busy_fixed_w = power.watts(v.resources_fixed, 1.0);
    v.power_idle_fixed_w = power.watts(v.resources_fixed, 0.0);

    out.compiled.push_back(std::move(compiled));
    out.table.versions.push_back(std::move(v));

    log_info("library ", out.table.model_name, "/", out.table.dataset_name, " ",
             out.table.versions.back().version, ": acc=",
             format_percent(out.table.versions.back().accuracy, 1),
             " fps_fixed=", format_double(out.table.versions.back().fps_fixed, 0));
  }

  // 4. Shared accelerators: original FINN (baseline) and the Flexible one.
  out.table.resources_finn =
      fpga::accelerator_resources(worstcase_compiled, folding, hls::AcceleratorVariant::kFixed,
                                  weight_bits, act_bits, config_.resource_constants);
  out.table.resources_flexible =
      fpga::accelerator_resources(worstcase_compiled, folding, hls::AcceleratorVariant::kFlexible,
                                  weight_bits, act_bits, config_.resource_constants);
  out.table.finn_power_busy_w = power.watts(out.table.resources_finn, 1.0);
  out.table.finn_power_idle_w = power.watts(out.table.resources_finn, 0.0);
  out.table.base_accuracy = out.table.versions.front().accuracy;

  // Flexible operating points per version: toggle activity scales with the
  // fraction of fed units; switch time from the weight reload model.
  for (std::size_t i = 0; i < out.table.versions.size(); ++i) {
    ModelVersion& v = out.table.versions[i];
    // Toggle activity follows the active MAC volume, which shrinks roughly
    // quadratically with the filter-pruning rate (both producer and consumer
    // channel counts drop); the floor is the always-clocked control fabric.
    const double active = 1.0 - v.achieved_rate;
    const double frac = config_.rates[i] == 0.0
                            ? 1.0
                            : config_.flexible_toggle_floor +
                                  (1.0 - config_.flexible_toggle_floor) * active * active;
    const double dyn = power.dynamic_watts(out.table.resources_flexible) * frac;
    v.power_busy_flexible_w = device_.static_power_w + dyn;
    v.power_idle_flexible_w =
        device_.static_power_w + dyn * config_.power_constants.idle_activity;
    v.flexible_switch_time_s = reconfig.flexible_switch_seconds(out.compiled[i]);
  }

  out.base_model = std::move(base);
  return out;
}

AcceleratorLibrary load_or_generate_library(const std::string& cache_path,
                                            const fpga::FpgaDevice& device,
                                            const LibraryConfig& config,
                                            const nn::CnvTopology& topology,
                                            const datasets::DatasetSpec& dataset_spec) {
  if (library_cache_exists(cache_path)) {
    log_info("loading cached library ", cache_path);
    return load_library(cache_path);
  }
  log_info("generating library ", topology.name, "/", dataset_spec.name,
           " (cache miss: ", cache_path, ")");
  const datasets::SyntheticDataset dataset = datasets::generate(dataset_spec);
  LibraryGenerator generator(device, config);
  GeneratedLibrary generated = generator.generate(topology, dataset);
  save_library(generated.table, cache_path);
  return generated.table;
}

}  // namespace adaflow::core
