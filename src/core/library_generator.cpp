#include "adaflow/core/library_generator.hpp"

#include <cmath>

#include "adaflow/common/logging.hpp"
#include "adaflow/common/strings.hpp"
#include "adaflow/dse/explorer.hpp"
#include "adaflow/graph/builders.hpp"
#include "adaflow/graph/lower.hpp"
#include "adaflow/nn/trainer.hpp"
#include "adaflow/pruning/prune.hpp"

namespace adaflow::core {

std::vector<double> LibraryConfig::default_rates() {
  std::vector<double> rates;
  for (int p = 0; p <= 85; p += 5) {
    rates.push_back(static_cast<double>(p) / 100.0);
  }
  return rates;
}

namespace {

std::string version_name(const std::string& model, double rate) {
  return model + "@p" + std::to_string(static_cast<int>(std::llround(rate * 100)));
}

dse::ExplorerConfig base_tune_config(const LibraryConfig& config) {
  dse::ExplorerConfig ec;
  ec.objective = dse::Objective::kMinResources;
  ec.target_fps = config.target_base_fps;
  ec.budget_fraction = config.tune_budget_fraction;
  ec.variant = hls::AcceleratorVariant::kFixed;
  ec.constraints.max_prune_granularity = config.tune_prune_granularity;
  ec.beam_width = config.tune_beam;
  ec.anneal_iters = config.tune_anneal_iters;
  ec.seed = config.seed;
  ec.resource_constants = config.resource_constants;
  return ec;
}

/// Shared worst-case folding: cheapest one sustaining target_base_fps, with
/// the pruning-granularity constraint so the shipped folding still admits the
/// 5%-step rate sweep. Falls back to the heuristic when infeasible.
hls::FoldingConfig tuned_base_folding(const nn::Model& base, const fpga::FpgaDevice& device,
                                      const LibraryConfig& config) {
  const dse::ExplorationResult r = dse::explore(base, device, base_tune_config(config));
  if (r.frontier.empty() || !r.objective_met) {
    log_warn("folding auto-tune found no feasible design meeting ", config.target_base_fps,
             " fps within ", config.tune_budget_fraction,
             " of the device; falling back to the heuristic folding");
    return hls::folding_for_target_fps(base, config.target_base_fps, device.clock_hz);
  }
  return r.best().folding;
}

}  // namespace

GeneratedLibrary LibraryGenerator::generate(const nn::CnvTopology& topology,
                                            const datasets::SyntheticDataset& dataset) const {
  return generate_graph(graph::from_cnv(topology), dataset);
}

GeneratedLibrary LibraryGenerator::generate_graph(
    const graph::Graph& graph, const datasets::SyntheticDataset& dataset) const {
  GeneratedLibrary out = generate_from(graph::lower_model(graph, config_.seed), dataset);
  out.table.topology_hash = graph.topology_hash();
  return out;
}

GeneratedLibrary LibraryGenerator::generate_from(nn::Model base,
                                                 const datasets::SyntheticDataset& dataset) const {
  require(!config_.rates.empty(), "library needs at least one pruning rate");
  require(config_.rates.front() == 0.0, "the first library rate must be 0 (the unpruned model)");

  // 1. Train the initial model (quantization-aware, Brevitas substitute).
  {
    nn::TrainConfig tc;
    tc.epochs = config_.base_epochs;
    tc.lr = config_.base_lr;
    tc.batch_size = config_.batch_size;
    tc.lr_decay_epochs = {config_.base_epochs * 3 / 4};
    tc.seed = config_.seed;
    nn::Trainer(tc).fit(base, dataset.train);
  }

  // Accuracy is evaluated on images snapped to the accelerator's input grid,
  // i.e. exactly what the FPGA sees.
  const nn::LabeledData snapped_test{
      hls::snap_to_input_grid(dataset.test.images, config_.input_quant), dataset.test.labels};

  // 2. Folding for the worst case (unpruned) model at the target throughput —
  //    heuristic by default, design-space-explored when tuning is on.
  const hls::FoldingConfig folding =
      config_.tune_folding
          ? tuned_base_folding(base, device_, config_)
          : hls::folding_for_target_fps(base, config_.target_base_fps, device_.clock_hz);
  hls::validate_folding(base, folding);

  const std::vector<hls::MvtuLayerDesc> mvtu_layers = hls::enumerate_mvtu_layers(base);
  require(!mvtu_layers.empty(), "initial model has no MVTU layers");
  const int weight_bits = mvtu_layers.front().weight_bits;
  const int act_bits = mvtu_layers.front().act_bits;

  // Equal-area cap for per-version retuning: whatever the unpruned Fixed
  // accelerator costs under the shared folding, no tuned version may exceed.
  const fpga::ResourceUsage base_fixed_area =
      fpga::accelerator_resources(hls::compile_geometry(base), folding,
                                  hls::AcceleratorVariant::kFixed, weight_bits, act_bits,
                                  config_.resource_constants);

  GeneratedLibrary out;
  out.folding = folding;
  out.table.model_name = base.name();
  out.table.dataset_name = dataset.spec.name;
  out.table.clock_hz = device_.clock_hz;

  const fpga::PowerModel power(device_, config_.power_constants);
  const fpga::ReconfigModel reconfig(device_);
  out.table.reconfig_time_s = reconfig.full_reconfig_seconds();

  // 3. Sweep pruning rates: prune -> retrain -> evaluate -> compile -> model
  //    performance/resources/power for both accelerator types.
  hls::CompiledModel worstcase_compiled;
  for (double rate : config_.rates) {
    // Pruning at 0% yields a structural copy of the base model.
    pruning::PruneResult pr = pruning::dataflow_aware_prune(base, folding, rate, config_.prune_options);
    const double achieved = pr.achieved_rate;
    nn::Model version_model = std::move(pr.model);
    if (rate > 0.0) {
      nn::TrainConfig tc;
      tc.epochs = config_.retrain_epochs;
      tc.lr = config_.retrain_lr;
      tc.batch_size = config_.batch_size;
      if (config_.retrain_epochs > 1) {
        tc.lr_decay_epochs = {config_.retrain_epochs - 1};
      }
      tc.seed = config_.seed + static_cast<std::uint64_t>(std::llround(rate * 100));
      nn::Trainer(tc).fit(version_model, dataset.train);
    }
    version_model.set_name(version_name(out.table.model_name, rate));

    ModelVersion v;
    v.version = version_model.name();
    v.requested_rate = rate;
    v.achieved_rate = achieved;
    v.accuracy = nn::Trainer::evaluate(version_model, snapped_test);

    hls::CompiledModel compiled =
        hls::compile_model(version_model, rate, config_.input_quant);
    compiled.accuracy = v.accuracy;
    if (rate == 0.0) {
      worstcase_compiled = compiled;
    }

    // Per-version Fixed folding: retuned to the pruned channel counts when
    // the auto-tuner is on (max fps within the unpruned accelerator's area),
    // the shared worst-case folding otherwise.
    v.folding_fixed = folding;
    if (config_.tune_folding) {
      dse::ExplorerConfig ec = base_tune_config(config_);
      ec.objective = dse::Objective::kMaxFps;
      ec.target_fps = 0.0;
      ec.budget = base_fixed_area;
      ec.constraints.max_prune_granularity = 0.0;  // version accelerators are final
      ec.seed = config_.seed + static_cast<std::uint64_t>(std::llround(rate * 100));
      const dse::ExplorationResult tuned =
          dse::explore_geometry(compiled, weight_bits, act_bits, device_, ec);
      if (tuned.frontier.empty()) {
        log_warn("folding auto-tune infeasible for ", v.version,
                 "; keeping the shared folding");
      } else {
        v.folding_fixed = tuned.best().folding;
      }
    }

    // Performance on both accelerator types (Flexible always runs the shared
    // worst-case folding — that is the accelerator actually on the fabric).
    const perf::PerfReport fixed_perf =
        perf::analyze(compiled, v.folding_fixed, hls::AcceleratorVariant::kFixed,
                      device_.clock_hz);
    const perf::PerfReport flex_perf =
        perf::analyze(compiled, folding, hls::AcceleratorVariant::kFlexible, device_.clock_hz);
    v.fps_fixed = fixed_perf.fps;
    v.fps_flexible = flex_perf.fps;
    v.latency_fixed_s = fixed_perf.latency_s;
    v.latency_flexible_s = flex_perf.latency_s;

    // This version's Fixed-Pruning accelerator.
    v.resources_fixed =
        fpga::accelerator_resources(compiled, v.folding_fixed, hls::AcceleratorVariant::kFixed,
                                    weight_bits, act_bits, config_.resource_constants);
    v.power_busy_fixed_w = power.watts(v.resources_fixed, 1.0);
    v.power_idle_fixed_w = power.watts(v.resources_fixed, 0.0);

    out.compiled.push_back(std::move(compiled));
    out.table.versions.push_back(std::move(v));

    log_info("library ", out.table.model_name, "/", out.table.dataset_name, " ",
             out.table.versions.back().version, ": acc=",
             format_percent(out.table.versions.back().accuracy, 1),
             " fps_fixed=", format_double(out.table.versions.back().fps_fixed, 0));
  }

  // 4. Shared accelerators: original FINN (baseline) and the Flexible one.
  out.table.resources_finn =
      fpga::accelerator_resources(worstcase_compiled, folding, hls::AcceleratorVariant::kFixed,
                                  weight_bits, act_bits, config_.resource_constants);
  out.table.resources_flexible =
      fpga::accelerator_resources(worstcase_compiled, folding, hls::AcceleratorVariant::kFlexible,
                                  weight_bits, act_bits, config_.resource_constants);
  out.table.folding_flexible = folding;
  out.table.finn_power_busy_w = power.watts(out.table.resources_finn, 1.0);
  out.table.finn_power_idle_w = power.watts(out.table.resources_finn, 0.0);
  out.table.base_accuracy = out.table.versions.front().accuracy;

  // Flexible operating points per version: toggle activity scales with the
  // fraction of fed units; switch time from the weight reload model.
  for (std::size_t i = 0; i < out.table.versions.size(); ++i) {
    ModelVersion& v = out.table.versions[i];
    // Toggle activity follows the active MAC volume, which shrinks roughly
    // quadratically with the filter-pruning rate (both producer and consumer
    // channel counts drop); the floor is the always-clocked control fabric.
    const double active = 1.0 - v.achieved_rate;
    const double frac = config_.rates[i] == 0.0
                            ? 1.0
                            : config_.flexible_toggle_floor +
                                  (1.0 - config_.flexible_toggle_floor) * active * active;
    const double dyn = power.dynamic_watts(out.table.resources_flexible) * frac;
    v.power_busy_flexible_w = device_.static_power_w + dyn;
    v.power_idle_flexible_w =
        device_.static_power_w + dyn * config_.power_constants.idle_activity;
    v.flexible_switch_time_s = reconfig.flexible_switch_seconds(out.compiled[i]);
  }

  out.base_model = std::move(base);
  return out;
}

AcceleratorLibrary load_or_generate_library(const std::string& cache_path,
                                            const fpga::FpgaDevice& device,
                                            const LibraryConfig& config,
                                            const nn::CnvTopology& topology,
                                            const datasets::DatasetSpec& dataset_spec) {
  const std::uint64_t expected_hash = graph::from_cnv(topology).topology_hash();
  if (library_cache_exists(cache_path)) {
    try {
      log_info("loading cached library ", cache_path);
      AcceleratorLibrary cached = load_library(cache_path);
      if (cached.topology_hash != expected_hash) {
        throw ConfigError("library cache " + cache_path +
                          " was generated for a different topology (cache hash " +
                          std::to_string(cached.topology_hash) + ", expected " +
                          std::to_string(expected_hash) + ")");
      }
      return cached;
    } catch (const ConfigError& e) {
      // Stale schema, topology mismatch or corrupt file: regenerate rather
      // than fail the run.
      log_warn("discarding library cache: ", e.what());
    }
  }
  log_info("generating library ", topology.name, "/", dataset_spec.name,
           " (cache miss: ", cache_path, ")");
  const datasets::SyntheticDataset dataset = datasets::generate(dataset_spec);
  LibraryGenerator generator(device, config);
  GeneratedLibrary generated = generator.generate(topology, dataset);
  save_library(generated.table, cache_path);
  return generated.table;
}

}  // namespace adaflow::core
