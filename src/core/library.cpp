#include "adaflow/core/library.hpp"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "adaflow/common/error.hpp"
#include "adaflow/common/strings.hpp"
#include "adaflow/common/table.hpp"

namespace adaflow::core {

const ModelVersion& AcceleratorLibrary::unpruned() const {
  require(!versions.empty(), "empty library");
  return versions.front();
}

const ModelVersion& AcceleratorLibrary::at_rate(double requested_rate) const {
  require(!versions.empty(), "empty library");
  const ModelVersion* best = &versions.front();
  double best_d = std::fabs(best->requested_rate - requested_rate);
  for (const ModelVersion& v : versions) {
    const double d = std::fabs(v.requested_rate - requested_rate);
    if (d < best_d) {
      best_d = d;
      best = &v;
    }
  }
  return *best;
}

std::size_t AcceleratorLibrary::index_of(const std::string& version) const {
  for (std::size_t i = 0; i < versions.size(); ++i) {
    if (versions[i].version == version) {
      return i;
    }
  }
  throw NotFoundError("library version " + version);
}

AcceleratorLibrary synthetic_library(int versions, double base_fps, double base_accuracy,
                                     double reconfig_time_s, double fps_growth) {
  require(versions > 0, "synthetic_library needs versions > 0");
  require(std::isfinite(base_fps) && base_fps > 0.0, "synthetic_library needs base_fps > 0");
  require(std::isfinite(fps_growth) && fps_growth >= 1.0,
          "synthetic_library needs fps_growth >= 1.0");
  AcceleratorLibrary lib;
  lib.model_name = "SYNTH";
  lib.dataset_name = "synthetic";
  lib.base_accuracy = base_accuracy;
  lib.reconfig_time_s = reconfig_time_s;
  lib.finn_power_busy_w = 4.5;
  lib.finn_power_idle_w = 3.2;
  for (int i = 0; i < versions; ++i) {
    ModelVersion v;
    const double rate =
        versions > 1 ? 0.85 * static_cast<double>(i) / static_cast<double>(versions - 1) : 0.0;
    v.version = "SYNTH@p" + std::to_string(static_cast<int>(std::lround(rate * 100.0)));
    v.requested_rate = rate;
    v.achieved_rate = rate;
    // Accuracy decays gently at first, faster at aggressive pruning rates —
    // the concave shape of the paper's retrained-accuracy curves.
    v.accuracy = base_accuracy - 0.02 * i - 0.005 * i * i;
    v.fps_fixed = base_fps * std::pow(fps_growth, i);
    v.fps_flexible = v.fps_fixed * 0.995;  // worst-case accelerator overhead
    v.latency_fixed_s = 1.0 / v.fps_fixed;
    v.latency_flexible_s = 1.0 / v.fps_flexible;
    v.power_busy_fixed_w = 4.2 + 0.25 * i;
    v.power_idle_fixed_w = 3.0;
    v.power_busy_flexible_w = 5.0 + 0.25 * i;
    v.power_idle_flexible_w = 3.5;
    v.flexible_switch_time_s = 0.001;
    lib.versions.push_back(v);
  }
  return lib;
}

AcceleratorLibrary scale_library_fps(const AcceleratorLibrary& library, double scale) {
  require(std::isfinite(scale) && scale > 0.0, "scale_library_fps needs scale > 0");
  AcceleratorLibrary scaled = library;
  for (ModelVersion& v : scaled.versions) {
    v.fps_fixed *= scale;
    v.fps_flexible *= scale;
    v.latency_fixed_s = v.fps_fixed > 0.0 ? 1.0 / v.fps_fixed : 0.0;
    v.latency_flexible_s = v.fps_flexible > 0.0 ? 1.0 / v.fps_flexible : 0.0;
  }
  return scaled;
}

namespace {
// v3 added the persisted foldings (per-version Fixed + shared Flexible);
// v4 keys the cache on the graph topology hash (CNV and detection libraries
// can never collide).
constexpr int kCacheVersion = 4;

void write_usage(std::ostream& out, const fpga::ResourceUsage& u) {
  out << u.luts << '\t' << u.flip_flops << '\t' << u.bram18 << '\t' << u.dsp;
}

fpga::ResourceUsage read_usage(std::istream& in) {
  fpga::ResourceUsage u;
  in >> u.luts >> u.flip_flops >> u.bram18 >> u.dsp;
  return u;
}

void write_folding(std::ostream& out, const hls::FoldingConfig& f) {
  out << f.layers.size();
  for (const hls::LayerFolding& layer : f.layers) {
    out << '\t' << layer.pe << '\t' << layer.simd;
  }
}

hls::FoldingConfig read_folding(std::istream& in, const std::string& path) {
  std::size_t count = 0;
  in >> count;
  require(static_cast<bool>(in) && count <= 1024, "library cache corrupt: " + path);
  hls::FoldingConfig f;
  f.layers.resize(count);
  for (hls::LayerFolding& layer : f.layers) {
    in >> layer.pe >> layer.simd;
  }
  return f;
}
}  // namespace

void save_library(const AcceleratorLibrary& library, const std::string& path) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path());
  }
  // Crash-safe write: stream into a sibling temp file, then atomically
  // rename over the destination. A process killed mid-save leaves either
  // the old cache or the new one — never a truncated file that a later
  // load_library would choke on.
  const std::filesystem::path tmp(path + ".tmp");
  std::ofstream out(tmp);
  require(out.good(), "cannot write library cache " + tmp.string());
  out.precision(17);  // max_digits10: doubles survive the text round-trip
  out << "adaflow-library\t" << kCacheVersion << '\n';
  out << library.model_name << '\t' << library.dataset_name << '\t' << library.topology_hash
      << '\n';
  out << library.base_accuracy << '\t' << library.clock_hz << '\t' << library.reconfig_time_s
      << '\t' << library.finn_power_busy_w << '\t' << library.finn_power_idle_w << '\n';
  write_usage(out, library.resources_finn);
  out << '\n';
  write_usage(out, library.resources_flexible);
  out << '\n';
  write_folding(out, library.folding_flexible);
  out << '\n';
  out << library.versions.size() << '\n';
  for (const ModelVersion& v : library.versions) {
    out << v.version << '\t' << v.requested_rate << '\t' << v.achieved_rate << '\t' << v.accuracy
        << '\t' << v.fps_fixed << '\t' << v.fps_flexible << '\t' << v.latency_fixed_s << '\t'
        << v.latency_flexible_s << '\t' << v.power_busy_fixed_w << '\t' << v.power_idle_fixed_w
        << '\t' << v.power_busy_flexible_w << '\t' << v.power_idle_flexible_w << '\t'
        << v.flexible_switch_time_s << '\t';
    write_usage(out, v.resources_fixed);
    out << '\t';
    write_folding(out, v.folding_fixed);
    out << '\n';
  }
  out.flush();
  require(out.good(), "error writing library cache " + tmp.string());
  out.close();
  std::error_code ec;
  std::filesystem::rename(tmp, p, ec);  // atomic within a filesystem (POSIX)
  if (ec) {
    std::filesystem::remove(tmp);
    throw Error("cannot move library cache " + tmp.string() + " to " + path + ": " +
                ec.message());
  }
}

AcceleratorLibrary load_library(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "cannot read library cache " + path);
  std::string magic;
  int version = 0;
  in >> magic >> version;
  require(magic == "adaflow-library", path + " is not a library cache");
  require(version == kCacheVersion,
          "library cache " + path + " has schema version " + std::to_string(version) +
              " but this build reads version " + std::to_string(kCacheVersion) +
              "; delete the cache (or let load_or_generate_library regenerate it)");
  AcceleratorLibrary lib;
  in >> lib.model_name >> lib.dataset_name >> lib.topology_hash;
  in >> lib.base_accuracy >> lib.clock_hz >> lib.reconfig_time_s >> lib.finn_power_busy_w >>
      lib.finn_power_idle_w;
  lib.resources_finn = read_usage(in);
  lib.resources_flexible = read_usage(in);
  lib.folding_flexible = read_folding(in, path);
  std::size_t count = 0;
  in >> count;
  require(static_cast<bool>(in) && count <= 4096, "library cache corrupt: " + path);
  lib.versions.resize(count);
  for (ModelVersion& v : lib.versions) {
    in >> v.version >> v.requested_rate >> v.achieved_rate >> v.accuracy >> v.fps_fixed >>
        v.fps_flexible >> v.latency_fixed_s >> v.latency_flexible_s >> v.power_busy_fixed_w >>
        v.power_idle_fixed_w >> v.power_busy_flexible_w >> v.power_idle_flexible_w >>
        v.flexible_switch_time_s;
    v.resources_fixed = read_usage(in);
    v.folding_fixed = read_folding(in, path);
  }
  require(static_cast<bool>(in), "library cache truncated: " + path);
  return lib;
}

bool library_cache_exists(const std::string& path) {
  return std::filesystem::exists(path);
}

std::string render_library_table(const AcceleratorLibrary& library) {
  TextTable table({"version", "rate", "achieved", "accuracy", "FPS(fixed)", "FPS(flex)",
                   "LUT(fixed)", "P_busy(fix)", "P_busy(flex)"});
  for (const ModelVersion& v : library.versions) {
    table.add_row({v.version, format_percent(v.requested_rate, 0),
                   format_percent(v.achieved_rate, 1), format_percent(v.accuracy, 2),
                   format_double(v.fps_fixed, 1), format_double(v.fps_flexible, 1),
                   format_double(v.resources_fixed.luts, 0),
                   format_double(v.power_busy_fixed_w, 3) + "W",
                   format_double(v.power_busy_flexible_w, 3) + "W"});
  }
  std::ostringstream os;
  os << "Library " << library.model_name << " / " << library.dataset_name
     << " (base accuracy " << format_percent(library.base_accuracy, 2) << ", reconfig "
     << format_double(library.reconfig_time_s * 1e3, 0) << " ms)\n"
     << table.render();
  return os.str();
}

}  // namespace adaflow::core
