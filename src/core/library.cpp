#include "adaflow/core/library.hpp"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "adaflow/common/error.hpp"
#include "adaflow/common/strings.hpp"
#include "adaflow/common/table.hpp"

namespace adaflow::core {

const ModelVersion& AcceleratorLibrary::unpruned() const {
  require(!versions.empty(), "empty library");
  return versions.front();
}

const ModelVersion& AcceleratorLibrary::at_rate(double requested_rate) const {
  require(!versions.empty(), "empty library");
  const ModelVersion* best = &versions.front();
  double best_d = std::fabs(best->requested_rate - requested_rate);
  for (const ModelVersion& v : versions) {
    const double d = std::fabs(v.requested_rate - requested_rate);
    if (d < best_d) {
      best_d = d;
      best = &v;
    }
  }
  return *best;
}

std::size_t AcceleratorLibrary::index_of(const std::string& version) const {
  for (std::size_t i = 0; i < versions.size(); ++i) {
    if (versions[i].version == version) {
      return i;
    }
  }
  throw NotFoundError("library version " + version);
}

namespace {
constexpr int kCacheVersion = 2;

void write_usage(std::ostream& out, const fpga::ResourceUsage& u) {
  out << u.luts << '\t' << u.flip_flops << '\t' << u.bram18 << '\t' << u.dsp;
}

fpga::ResourceUsage read_usage(std::istream& in) {
  fpga::ResourceUsage u;
  in >> u.luts >> u.flip_flops >> u.bram18 >> u.dsp;
  return u;
}
}  // namespace

void save_library(const AcceleratorLibrary& library, const std::string& path) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path());
  }
  std::ofstream out(path);
  require(out.good(), "cannot write library cache " + path);
  out.precision(17);  // max_digits10: doubles survive the text round-trip
  out << "adaflow-library\t" << kCacheVersion << '\n';
  out << library.model_name << '\t' << library.dataset_name << '\n';
  out << library.base_accuracy << '\t' << library.clock_hz << '\t' << library.reconfig_time_s
      << '\t' << library.finn_power_busy_w << '\t' << library.finn_power_idle_w << '\n';
  write_usage(out, library.resources_finn);
  out << '\n';
  write_usage(out, library.resources_flexible);
  out << '\n';
  out << library.versions.size() << '\n';
  for (const ModelVersion& v : library.versions) {
    out << v.version << '\t' << v.requested_rate << '\t' << v.achieved_rate << '\t' << v.accuracy
        << '\t' << v.fps_fixed << '\t' << v.fps_flexible << '\t' << v.latency_fixed_s << '\t'
        << v.latency_flexible_s << '\t' << v.power_busy_fixed_w << '\t' << v.power_idle_fixed_w
        << '\t' << v.power_busy_flexible_w << '\t' << v.power_idle_flexible_w << '\t'
        << v.flexible_switch_time_s << '\t';
    write_usage(out, v.resources_fixed);
    out << '\n';
  }
  require(out.good(), "error writing library cache " + path);
}

AcceleratorLibrary load_library(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "cannot read library cache " + path);
  std::string magic;
  int version = 0;
  in >> magic >> version;
  require(magic == "adaflow-library", path + " is not a library cache");
  require(version == kCacheVersion, "library cache version mismatch (expected " +
                                        std::to_string(kCacheVersion) + ")");
  AcceleratorLibrary lib;
  in >> lib.model_name >> lib.dataset_name;
  in >> lib.base_accuracy >> lib.clock_hz >> lib.reconfig_time_s >> lib.finn_power_busy_w >>
      lib.finn_power_idle_w;
  lib.resources_finn = read_usage(in);
  lib.resources_flexible = read_usage(in);
  std::size_t count = 0;
  in >> count;
  require(count <= 4096, "library cache corrupt");
  lib.versions.resize(count);
  for (ModelVersion& v : lib.versions) {
    in >> v.version >> v.requested_rate >> v.achieved_rate >> v.accuracy >> v.fps_fixed >>
        v.fps_flexible >> v.latency_fixed_s >> v.latency_flexible_s >> v.power_busy_fixed_w >>
        v.power_idle_fixed_w >> v.power_busy_flexible_w >> v.power_idle_flexible_w >>
        v.flexible_switch_time_s;
    v.resources_fixed = read_usage(in);
  }
  require(static_cast<bool>(in), "library cache truncated: " + path);
  return lib;
}

bool library_cache_exists(const std::string& path) {
  return std::filesystem::exists(path);
}

std::string render_library_table(const AcceleratorLibrary& library) {
  TextTable table({"version", "rate", "achieved", "accuracy", "FPS(fixed)", "FPS(flex)",
                   "LUT(fixed)", "P_busy(fix)", "P_busy(flex)"});
  for (const ModelVersion& v : library.versions) {
    table.add_row({v.version, format_percent(v.requested_rate, 0),
                   format_percent(v.achieved_rate, 1), format_percent(v.accuracy, 2),
                   format_double(v.fps_fixed, 1), format_double(v.fps_flexible, 1),
                   format_double(v.resources_fixed.luts, 0),
                   format_double(v.power_busy_fixed_w, 3) + "W",
                   format_double(v.power_busy_flexible_w, 3) + "W"});
  }
  std::ostringstream os;
  os << "Library " << library.model_name << " / " << library.dataset_name
     << " (base accuracy " << format_percent(library.base_accuracy, 2) << ", reconfig "
     << format_double(library.reconfig_time_s * 1e3, 0) << " ms)\n"
     << table.render();
  return os.str();
}

}  // namespace adaflow::core
