#include "adaflow/detect/runner.hpp"

#include "adaflow/common/error.hpp"
#include "adaflow/sim/event_queue.hpp"

namespace adaflow::detect {

DetectionWorkload::DetectionWorkload(SceneTrace scene, DetectorModel model, std::uint64_t seed)
    : scene_(std::move(scene)), model_(model), seed_(seed) {
  model_.validate();
}

void DetectionWorkload::attach(edge::DeviceSim& device, std::uint64_t salt) {
  // splitmix-style stream separation: adjacent salts give uncorrelated seeds.
  streams_.push_back(std::make_unique<Rng>(seed_ ^ ((salt + 1) * 0x9e3779b97f4a7c15ULL)));
  Rng* rng = streams_.back().get();
  edge::DeviceSim* dev = &device;
  device.set_service_model([this, rng, dev](double now_s, const edge::ServingMode& mode) {
    const FrameOutcome f = simulate_frame(*rng, scene_.density_at(now_s), mode.accuracy, model_);
    sim::DetectionStats& d = dev->metrics().detection;
    d.frames_scored += 1;
    d.objects_total += f.objects;
    d.candidates_total += f.candidates;
    d.suppressed_total += f.suppressed;
    d.nms_pairs_total += f.nms_pairs;
    d.true_positives += f.true_positives;
    d.false_positives += f.false_positives;
    d.missed_objects += f.missed;
    d.postprocess_s += f.postprocess_s;
    d.map_proxy_sum += f.map_proxy;
    return edge::DeviceSim::FrameService{f.postprocess_s, f.map_proxy};
  });
}

namespace {

/// server.cpp's SingleServerDriver with the detection service model attached
/// (the workload trace is derived from the scene, so arrival rate and
/// per-frame cost move together).
struct DetectionDriver {
  edge::WorkloadTrace trace;
  const edge::ServerConfig& config;
  Rng rng;
  sim::EventQueue queue;
  edge::DeviceSim device;

  DetectionDriver(const SceneTrace& scene, edge::ServingPolicy& policy,
                  const edge::ServerConfig& c, const DetectionRunConfig& run,
                  std::uint64_t seed)
      : trace(workload_from_scene(scene, run.base_fps, run.fps_per_object)), config(c),
        rng(seed), device(queue, policy, c, nullptr, "detector") {}

  void on_arrival() {
    device.offer_frame(/*count_loss=*/true);
    schedule_next_arrival();
  }

  void schedule_next_arrival() {
    const double rate = trace.rate_at(queue.now());
    if (rate <= 0.0) {
      queue.schedule_in(0.05, [this] { schedule_next_arrival(); });
      return;
    }
    const double when = queue.now() + rng.exponential(rate);
    if (when <= trace.duration()) {
      queue.schedule_at(when, [this] { on_arrival(); });
    }
  }

  void on_poll() {
    device.poll();
    const double next = queue.now() + config.poll_interval_s;
    if (next <= trace.duration()) {
      queue.schedule_at(next, [this] { on_poll(); });
    }
  }

  void on_sample() {
    device.sample_window();
    const double next = queue.now() + config.sample_interval_s;
    if (next <= trace.duration() + 1e-9) {
      queue.schedule_at(next, [this] { on_sample(); });
    }
  }
};

}  // namespace

edge::RunMetrics run_detection(const SceneTrace& scene, edge::ServingPolicy& policy,
                               const edge::ServerConfig& server,
                               const DetectionRunConfig& config, std::uint64_t seed) {
  DetectionDriver driver(scene, policy, server, config, seed);
  // An independent stream for the frame outcomes: the arrival process must
  // not shift when the detector model draws a different number of variates.
  DetectionWorkload workload(scene, config.detector, seed ^ 0xd37ec7a9b1f05c3dULL);
  workload.attach(driver.device);
  driver.device.start();

  driver.schedule_next_arrival();
  driver.queue.schedule_at(server.poll_interval_s, [&driver] { driver.on_poll(); });
  driver.queue.schedule_at(server.sample_interval_s, [&driver] { driver.on_sample(); });

  driver.queue.run_until(driver.trace.duration());
  driver.device.finalize(driver.trace.duration());
  return std::move(driver.device.metrics());
}

StaticFlexiblePolicy::StaticFlexiblePolicy(const core::AcceleratorLibrary& library,
                                           std::size_t version)
    : library_(library), version_(version) {
  require(version_ < library_.versions.size(),
          "StaticFlexiblePolicy version index out of range");
}

edge::ServingMode StaticFlexiblePolicy::initial_mode() {
  const core::ModelVersion& v = library_.versions[version_];
  edge::ServingMode mode;
  mode.model_version = v.version;
  mode.accelerator = "Flexible";
  mode.fps = v.fps_flexible;
  mode.accuracy = v.accuracy;
  mode.power_busy_w = v.power_busy_flexible_w;
  mode.power_idle_w = v.power_idle_flexible_w;
  return mode;
}

}  // namespace adaflow::detect
