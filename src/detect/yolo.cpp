#include "adaflow/detect/yolo.hpp"

#include <cmath>
#include <string>

#include "adaflow/common/error.hpp"
#include "adaflow/fpga/power.hpp"
#include "adaflow/fpga/reconfig.hpp"
#include "adaflow/fpga/resources.hpp"
#include "adaflow/graph/lower.hpp"
#include "adaflow/hls/folding.hpp"
#include "adaflow/perf/perf.hpp"

namespace adaflow::detect {

void YoloTopology::validate() const {
  require(!name.empty(), "YoloTopology.name must not be empty");
  require(input_channels > 0, "YoloTopology.input_channels must be positive");
  require(backbone_channels.size() >= 2,
          "YoloTopology needs at least two backbone stages (the head fuses the last two)");
  for (std::int64_t c : backbone_channels) {
    require(c >= 4, "YoloTopology backbone widths must be >= 4");
  }
  require(head_channels >= 4, "YoloTopology.head_channels must be >= 4");
  require(anchors > 0 && classes > 0, "YoloTopology needs positive anchors and classes");
  // Every backbone stage halves the spatial dim; the deepest map must stay
  // at least 2x2 so the upsample/concat fusion is well-formed.
  std::int64_t dim = input_dim;
  for (std::size_t i = 0; i < backbone_channels.size(); ++i) {
    require(dim % 2 == 0, "YoloTopology.input_dim must halve cleanly through every "
                          "backbone stage");
    dim /= 2;
  }
  require(dim >= 2, "YoloTopology.input_dim too small for the backbone depth");
}

YoloTopology yolo_tiny() { return YoloTopology{}; }

namespace {

/// Channel-pruned width: nearest even count, floored at 4 (the paper's
/// dataflow-aware pruning keeps PE-friendly multiples; even widths keep the
/// folding heuristic's divisor search productive).
std::int64_t pruned_width(std::int64_t width, double rate) {
  const auto scaled = static_cast<std::int64_t>(std::llround(static_cast<double>(width) *
                                                             (1.0 - rate) / 2.0)) * 2;
  return std::max<std::int64_t>(4, scaled);
}

std::string version_name(const std::string& model, double rate) {
  return model + "@p" + std::to_string(static_cast<int>(std::llround(rate * 100)));
}

/// Weight/threshold payload a Flexible fast switch must stream, synthesized
/// onto the weights-free geometry so fpga::ReconfigModel prices it the same
/// way it prices trained CNV models: one level byte per weight, one
/// (2^act_bits - 1)-entry threshold bank per activation channel (the bare
/// detection outputs carry none).
hls::CompiledModel padded_for_switch_cost(hls::CompiledModel geometry, int act_bits) {
  const auto steps = static_cast<std::size_t>((1 << act_bits) - 1);
  for (std::size_t i = 0; i < geometry.stages.size(); ++i) {
    hls::CompiledStage& stage = geometry.stages[i];
    if (!hls::is_mvtu_kind(stage.desc.kind)) {
      continue;
    }
    stage.weight_levels.assign(
        static_cast<std::size_t>(stage.desc.ch_out * stage.desc.kernel * stage.desc.kernel *
                                 stage.desc.ch_in),
        0);
    const bool is_output = stage.desc.name == "det_coarse" || stage.desc.name == "det_fine";
    if (!is_output) {
      hls::ChannelThresholds bank;
      bank.thresholds.assign(steps, 0);
      stage.thresholds.channels.assign(static_cast<std::size_t>(stage.desc.ch_out), bank);
    }
  }
  return geometry;
}

}  // namespace

graph::Graph yolo_graph(const YoloTopology& topology, double rate) {
  topology.validate();
  require(rate >= 0.0 && rate < 1.0, "yolo_graph pruning rate must be in [0, 1)");

  graph::Graph g(topology.name, topology.input_channels, topology.input_dim, topology.quant);
  std::int64_t cur = g.input();
  std::int64_t fine_src = -1;  // second-deepest backbone map (the fusion branch)
  for (std::size_t i = 0; i < topology.backbone_channels.size(); ++i) {
    const std::string tag = std::to_string(i);
    const std::int64_t width = pruned_width(topology.backbone_channels[i], rate);
    if (i == 0) {
      // Patchify stem: a 2x2 stride-2 conv halves the dim without a pool. A
      // stride-1 3x3 stem on the 3 unprunable input channels would carry a
      // cycle floor no pruning rate can shrink, flattening the library's FPS
      // ladder to the stem's II.
      cur = g.add_conv("stem", cur, width, 2, 2, 0);
      cur = g.add_threshold("act" + tag, "bn" + tag, cur);
    } else {
      cur = g.add_conv("conv" + tag, cur, width, 3, 1, 1);
      cur = g.add_threshold("act" + tag, "bn" + tag, cur);
      cur = g.add_pool("pool" + tag, cur, 2);
    }
    if (i + 2 == topology.backbone_channels.size()) {
      fine_src = cur;  // branch point: feeds both the last stage and the fusion
    }
  }

  // Coarse head on the deepest map.
  const std::int64_t deep = cur;
  std::int64_t coarse = g.add_conv("head_coarse", deep, pruned_width(topology.head_channels, rate),
                                   3, 1, 1);
  coarse = g.add_threshold("head_coarse_act", "head_coarse_bn", coarse);
  g.add_conv("det_coarse", coarse, topology.head_out_channels(), 1, 1, 0);

  // Fine head: upsample the deepest map back to the branch resolution and
  // fuse with the second-deepest pooled map — up2 exactly undoes the last
  // stage's pool.
  const std::int64_t up = g.add_upsample("up2", deep, 2);
  const std::int64_t fused = g.add_concat("fuse", {up, fine_src});
  std::int64_t fine = g.add_conv("head_fine", fused, pruned_width(topology.head_channels, rate),
                                 3, 1, 1);
  fine = g.add_threshold("head_fine_act", "head_fine_bn", fine);
  g.add_conv("det_fine", fine, topology.head_out_channels(), 1, 1, 0);

  g.validate();
  return g;
}

void DetectionLibraryConfig::validate() const {
  require(!rates.empty(), "detection library needs at least one pruning rate");
  require(rates.front() == 0.0, "the first detection library rate must be 0 (unpruned)");
  for (std::size_t i = 0; i < rates.size(); ++i) {
    require(rates[i] >= 0.0 && rates[i] < 1.0,
            "detection library rate " + std::to_string(i) + " must be in [0, 1)");
    require(i == 0 || rates[i] > rates[i - 1],
            "detection library rates must be strictly ascending");
  }
  require(target_base_fps > 0.0, "DetectionLibraryConfig.target_base_fps must be positive");
  require(base_map > 0.0 && base_map <= 1.0, "DetectionLibraryConfig.base_map must be in (0, 1]");
  require(prune_map_penalty >= 0.0 && prune_map_penalty <= 1.0,
          "DetectionLibraryConfig.prune_map_penalty must be in [0, 1]");
  require(flexible_toggle_floor >= 0.0 && flexible_toggle_floor <= 1.0,
          "DetectionLibraryConfig.flexible_toggle_floor must be in [0, 1]");
}

core::AcceleratorLibrary detection_library(const fpga::FpgaDevice& device,
                                           const YoloTopology& topology,
                                           const DetectionLibraryConfig& config) {
  config.validate();
  const graph::Graph base_graph = yolo_graph(topology, 0.0);
  const hls::CompiledModel base_geom = graph::lower_geometry(base_graph);
  const int weight_bits = topology.quant.weight_bits;
  const int act_bits = topology.quant.act_bits;

  // Shared worst-case folding, sized on the unpruned geometry. Pruned
  // versions keep it (the untuned generator path): the runtime channel
  // bounds just lower the fold counts, which is what perf's ceil-folded
  // cycle model computes.
  const hls::FoldingConfig folding =
      hls::folding_for_target_fps(base_geom, config.target_base_fps, device.clock_hz);
  hls::validate_folding(base_geom, folding);

  core::AcceleratorLibrary lib;
  lib.model_name = topology.name;
  lib.dataset_name = "scene-density";
  lib.topology_hash = base_graph.topology_hash();
  lib.base_accuracy = config.base_map;
  lib.clock_hz = device.clock_hz;
  lib.folding_flexible = folding;

  const fpga::PowerModel power(device, config.power_constants);
  const fpga::ReconfigModel reconfig(device);
  lib.reconfig_time_s = reconfig.full_reconfig_seconds();

  // Prunable conv volume of the base graph (for the achieved-rate readout):
  // every conv except the fixed-width 1x1 detection outputs.
  const auto prunable_sum = [](const graph::Graph& g) {
    std::int64_t sum = 0;
    for (std::int64_t id = 0; id < static_cast<std::int64_t>(g.size()); ++id) {
      const graph::Node& n = g.node(id);
      if (n.kind == graph::NodeKind::kConv && n.name.rfind("det_", 0) != 0) {
        sum += n.ch_out;
      }
    }
    return sum;
  };
  const std::int64_t base_prunable = prunable_sum(base_graph);

  for (double rate : config.rates) {
    const graph::Graph pruned = yolo_graph(topology, rate);
    hls::CompiledModel compiled = graph::lower_geometry(pruned);
    compiled.version = version_name(topology.name, rate);
    compiled.pruning_rate = rate;

    core::ModelVersion v;
    v.version = compiled.version;
    v.requested_rate = rate;
    v.achieved_rate = 1.0 - static_cast<double>(prunable_sum(pruned)) /
                                static_cast<double>(base_prunable);
    v.accuracy = std::max(
        0.05, config.base_map *
                  (1.0 - config.prune_map_penalty * std::pow(v.achieved_rate, 1.5)));
    compiled.accuracy = v.accuracy;

    v.folding_fixed = folding;
    const perf::PerfReport fixed_perf =
        perf::analyze(compiled, folding, hls::AcceleratorVariant::kFixed, device.clock_hz);
    const perf::PerfReport flex_perf =
        perf::analyze(compiled, folding, hls::AcceleratorVariant::kFlexible, device.clock_hz);
    v.fps_fixed = fixed_perf.fps;
    v.fps_flexible = flex_perf.fps;
    v.latency_fixed_s = fixed_perf.latency_s;
    v.latency_flexible_s = flex_perf.latency_s;

    v.resources_fixed =
        fpga::accelerator_resources(compiled, folding, hls::AcceleratorVariant::kFixed,
                                    weight_bits, act_bits, config.resource_constants);
    v.power_busy_fixed_w = power.watts(v.resources_fixed, 1.0);
    v.power_idle_fixed_w = power.watts(v.resources_fixed, 0.0);
    v.flexible_switch_time_s =
        reconfig.flexible_switch_seconds(padded_for_switch_cost(compiled, act_bits));

    lib.versions.push_back(std::move(v));
  }

  lib.resources_finn =
      fpga::accelerator_resources(base_geom, folding, hls::AcceleratorVariant::kFixed,
                                  weight_bits, act_bits, config.resource_constants);
  lib.resources_flexible =
      fpga::accelerator_resources(base_geom, folding, hls::AcceleratorVariant::kFlexible,
                                  weight_bits, act_bits, config.resource_constants);
  lib.finn_power_busy_w = power.watts(lib.resources_finn, 1.0);
  lib.finn_power_idle_w = power.watts(lib.resources_finn, 0.0);

  // Flexible operating points: toggle activity follows the active MAC
  // volume, quadratically in the surviving channel fraction, floored at the
  // always-clocked control fabric (same model as the CNV generator).
  for (std::size_t i = 0; i < lib.versions.size(); ++i) {
    core::ModelVersion& v = lib.versions[i];
    const double active = 1.0 - v.achieved_rate;
    const double frac = config.rates[i] == 0.0
                            ? 1.0
                            : config.flexible_toggle_floor +
                                  (1.0 - config.flexible_toggle_floor) * active * active;
    const double dyn = power.dynamic_watts(lib.resources_flexible) * frac;
    v.power_busy_flexible_w = device.static_power_w + dyn;
    v.power_idle_flexible_w =
        device.static_power_w + dyn * config.power_constants.idle_activity;
  }
  return lib;
}

}  // namespace adaflow::detect
