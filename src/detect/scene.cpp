#include "adaflow/detect/scene.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "adaflow/common/error.hpp"
#include "adaflow/common/rng.hpp"

namespace adaflow::detect {

SceneTrace::SceneTrace(std::vector<double> times, std::vector<double> densities,
                       double duration_s)
    : times_(std::move(times)), densities_(std::move(densities)), duration_(duration_s) {
  require(!times_.empty(), "SceneTrace needs at least one segment");
  require(times_.size() == densities_.size(),
          "SceneTrace has " + std::to_string(times_.size()) + " boundaries for " +
              std::to_string(densities_.size()) + " densities");
  require(times_.front() == 0.0, "SceneTrace must start at t=0");
  for (std::size_t i = 0; i < times_.size(); ++i) {
    require(i == 0 || times_[i] > times_[i - 1],
            "SceneTrace boundaries must be strictly ascending (segment " + std::to_string(i) +
                ")");
    require(densities_[i] >= 0.0 && std::isfinite(densities_[i]),
            "SceneTrace density of segment " + std::to_string(i) + " must be finite and >= 0");
  }
  require(duration_ > times_.back(), "SceneTrace duration must extend past the last boundary");
}

double SceneTrace::density_at(double t) const {
  // First segment whose start is past t, then step back one.
  auto it = std::upper_bound(times_.begin(), times_.end(), t);
  const std::size_t idx = it == times_.begin() ? 0 : static_cast<std::size_t>(it - times_.begin()) - 1;
  return densities_[idx];
}

SceneTrace SceneTrace::scaled(double factor) const {
  require(factor >= 0.0 && std::isfinite(factor), "scene scale must be finite and >= 0");
  std::vector<double> densities = densities_;
  for (double& d : densities) {
    d *= factor;
  }
  return SceneTrace(times_, std::move(densities), duration_);
}

SceneTrace rush_hour_scene(double base_density, double peak_density, double onset_s,
                           double ramp_s, double hold_s, double duration_s, double step_s,
                           double jitter, std::uint64_t seed) {
  require(base_density >= 0.0 && peak_density >= base_density,
          "rush_hour_scene needs 0 <= base_density <= peak_density");
  require(onset_s >= 0.0 && ramp_s > 0.0 && hold_s >= 0.0, "rush_hour_scene phase times invalid");
  require(step_s > 0.0 && duration_s > step_s, "rush_hour_scene needs step_s > 0 and a longer duration");
  require(jitter >= 0.0 && jitter < 1.0, "rush_hour_scene jitter must be in [0, 1)");

  Rng rng(seed);
  std::vector<double> times;
  std::vector<double> densities;
  for (double t = 0.0; t < duration_s; t += step_s) {
    double d = base_density;
    if (t >= onset_s && t < onset_s + ramp_s) {
      d = base_density + (peak_density - base_density) * (t - onset_s) / ramp_s;
    } else if (t >= onset_s + ramp_s && t < onset_s + ramp_s + hold_s) {
      d = peak_density;
    } else if (t >= onset_s + ramp_s + hold_s && t < onset_s + 2.0 * ramp_s + hold_s) {
      const double down = t - (onset_s + ramp_s + hold_s);
      d = peak_density - (peak_density - base_density) * down / ramp_s;
    }
    times.push_back(t);
    densities.push_back(d * rng.uniform(1.0 - jitter, 1.0 + jitter));
  }
  return SceneTrace(std::move(times), std::move(densities), duration_s);
}

edge::WorkloadTrace workload_from_scene(const SceneTrace& scene, double base_fps,
                                        double fps_per_object) {
  require(base_fps > 0.0, "workload_from_scene needs base_fps > 0");
  require(fps_per_object >= 0.0, "workload_from_scene needs fps_per_object >= 0");
  std::vector<double> rates;
  rates.reserve(scene.segment_densities().size());
  for (double d : scene.segment_densities()) {
    rates.push_back(base_fps + fps_per_object * d);
  }
  return edge::WorkloadTrace(scene.change_times(), std::move(rates), scene.duration());
}

}  // namespace adaflow::detect
