#include "adaflow/detect/pipeline.hpp"

#include <algorithm>
#include <cmath>

#include "adaflow/common/error.hpp"

namespace adaflow::detect {

double iou(const Box& a, const Box& b) {
  const double ix = std::max(0.0, std::min(a.x2, b.x2) - std::max(a.x1, b.x1));
  const double iy = std::max(0.0, std::min(a.y2, b.y2) - std::max(a.y1, b.y1));
  const double inter = ix * iy;
  const double area_a = std::max(0.0, a.x2 - a.x1) * std::max(0.0, a.y2 - a.y1);
  const double area_b = std::max(0.0, b.x2 - b.x1) * std::max(0.0, b.y2 - b.y1);
  const double uni = area_a + area_b - inter;
  return uni > 0.0 ? inter / uni : 0.0;
}

void DetectorModel::validate() const {
  require(anchors_per_object >= 1.0 && std::isfinite(anchors_per_object),
          "DetectorModel.anchors_per_object must be >= 1");
  require(false_candidates >= 0.0 && std::isfinite(false_candidates),
          "DetectorModel.false_candidates must be >= 0");
  require(nms_iou_threshold > 0.0 && nms_iou_threshold < 1.0,
          "DetectorModel.nms_iou_threshold must be in (0, 1)");
  require(match_iou > 0.0 && match_iou < 1.0, "DetectorModel.match_iou must be in (0, 1)");
  require(crowd_penalty >= 0.0 && crowd_penalty < 1.0,
          "DetectorModel.crowd_penalty must be in [0, 1)");
  require(candidate_cost_s >= 0.0 && std::isfinite(candidate_cost_s),
          "DetectorModel.candidate_cost_s must be >= 0");
  require(pair_cost_s >= 0.0 && std::isfinite(pair_cost_s),
          "DetectorModel.pair_cost_s must be >= 0");
}

namespace {

/// Knuth's product-of-uniforms Poisson sampler (Rng has no poisson; lambdas
/// here stay small — tens of objects — so the O(lambda) loop is fine).
std::int64_t poisson(Rng& rng, double lambda) {
  if (lambda <= 0.0) {
    return 0;
  }
  const double limit = std::exp(-lambda);
  std::int64_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= rng.uniform();
  } while (p > limit);
  return k - 1;
}

Box jittered(Rng& rng, const Box& truth, double sigma) {
  const double w = truth.x2 - truth.x1;
  const double h = truth.y2 - truth.y1;
  Box b;
  b.x1 = truth.x1 + rng.normal(0.0, sigma) * w;
  b.y1 = truth.y1 + rng.normal(0.0, sigma) * h;
  b.x2 = truth.x2 + rng.normal(0.0, sigma) * w;
  b.y2 = truth.y2 + rng.normal(0.0, sigma) * h;
  if (b.x2 < b.x1) std::swap(b.x1, b.x2);
  if (b.y2 < b.y1) std::swap(b.y1, b.y2);
  return b;
}

}  // namespace

std::vector<Box> greedy_nms(std::vector<Box> boxes, double iou_threshold,
                            std::int64_t* pairs_compared) {
  // Deterministic pick order: confidence desc, then geometry — equal
  // confidences must never reorder between insertion orders or runs.
  std::sort(boxes.begin(), boxes.end(), [](const Box& a, const Box& b) {
    if (a.confidence != b.confidence) return a.confidence > b.confidence;
    if (a.x1 != b.x1) return a.x1 < b.x1;
    return a.y1 < b.y1;
  });
  std::vector<char> dead(boxes.size(), 0);
  std::vector<Box> kept;
  for (std::size_t i = 0; i < boxes.size(); ++i) {
    if (dead[i]) {
      continue;
    }
    kept.push_back(boxes[i]);
    for (std::size_t j = i + 1; j < boxes.size(); ++j) {
      if (dead[j]) {
        continue;
      }
      if (pairs_compared != nullptr) {
        ++*pairs_compared;
      }
      if (iou(boxes[i], boxes[j]) > iou_threshold) {
        dead[j] = 1;
      }
    }
  }
  return kept;
}

FrameOutcome simulate_frame(Rng& rng, double density, double accuracy,
                            const DetectorModel& model) {
  require(density >= 0.0 && std::isfinite(density), "simulate_frame needs density >= 0");
  require(accuracy >= 0.0 && accuracy <= 1.0, "simulate_frame needs accuracy in [0, 1]");

  FrameOutcome out;
  out.objects = poisson(rng, density);

  // Ground truth: boxes scattered over the unit image.
  std::vector<Box> truth;
  truth.reserve(static_cast<std::size_t>(out.objects));
  for (std::int64_t i = 0; i < out.objects; ++i) {
    const double w = rng.uniform(0.05, 0.20);
    const double h = rng.uniform(0.05, 0.20);
    Box b;
    b.x1 = rng.uniform(0.0, 1.0 - w);
    b.y1 = rng.uniform(0.0, 1.0 - h);
    b.x2 = b.x1 + w;
    b.y2 = b.y1 + h;
    truth.push_back(b);
  }

  // Proposals. A localized object spawns tightly-jittered anchors; a crowd-
  // or pruning-degraded miss spawns the same anchors with the localization
  // blown up past the match threshold — the candidate COUNT (and thus the
  // NMS bill) does not shrink just because the model got worse.
  const double p_detect = std::clamp(
      accuracy * (1.0 - model.crowd_penalty * static_cast<double>(out.objects)), 0.02, 0.995);
  std::vector<Box> proposals;
  for (const Box& t : truth) {
    const std::int64_t anchors = 1 + poisson(rng, model.anchors_per_object - 1.0);
    const bool localized = rng.bernoulli(p_detect);
    const double sigma = localized ? 0.02 + 0.10 * (1.0 - accuracy) : 0.60;
    for (std::int64_t a = 0; a < anchors; ++a) {
      Box b = jittered(rng, t, sigma);
      b.confidence = accuracy * rng.uniform(0.6, 1.0);
      proposals.push_back(b);
    }
  }
  // Clutter grows as the model degrades (a pruned head fires on background).
  const double clutter_lambda = model.false_candidates * (1.2 - accuracy);
  const std::int64_t clutter = poisson(rng, clutter_lambda);
  for (std::int64_t i = 0; i < clutter; ++i) {
    const double w = rng.uniform(0.05, 0.20);
    const double h = rng.uniform(0.05, 0.20);
    Box b;
    b.x1 = rng.uniform(0.0, 1.0 - w);
    b.y1 = rng.uniform(0.0, 1.0 - h);
    b.x2 = b.x1 + w;
    b.y2 = b.y1 + h;
    b.confidence = rng.uniform(0.3, 0.75);
    proposals.push_back(b);
  }
  out.candidates = static_cast<std::int64_t>(proposals.size());

  const std::vector<Box> kept = greedy_nms(std::move(proposals), model.nms_iou_threshold,
                                           &out.nms_pairs);
  out.kept = static_cast<std::int64_t>(kept.size());
  out.suppressed = out.candidates - out.kept;

  // Greedy matching in pick order: each kept box claims its best unmatched
  // ground-truth object above match_iou.
  std::vector<char> claimed(truth.size(), 0);
  for (const Box& k : kept) {
    double best = model.match_iou;
    std::int64_t best_idx = -1;
    for (std::size_t t = 0; t < truth.size(); ++t) {
      if (claimed[t]) {
        continue;
      }
      const double overlap = iou(k, truth[t]);
      if (overlap >= best) {
        best = overlap;
        best_idx = static_cast<std::int64_t>(t);
      }
    }
    if (best_idx >= 0) {
      claimed[static_cast<std::size_t>(best_idx)] = 1;
      ++out.true_positives;
    } else {
      ++out.false_positives;
    }
  }
  out.missed = out.objects - out.true_positives;

  const double denom = static_cast<double>(out.true_positives) +
                       0.5 * static_cast<double>(out.false_positives + out.missed);
  // A clean empty frame is a perfect detection result; an empty frame with
  // clutter kept is not.
  out.map_proxy = denom > 0.0 ? static_cast<double>(out.true_positives) / denom : 1.0;

  out.postprocess_s = model.candidate_cost_s * static_cast<double>(out.candidates) +
                      model.pair_cost_s * static_cast<double>(out.nms_pairs);
  return out;
}

}  // namespace adaflow::detect
