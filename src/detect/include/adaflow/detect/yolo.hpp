#pragma once

/// \file yolo.hpp
/// YOLO-style tiny detection topology on the graph IR, and the geometry-only
/// detection library generator. The backbone is a conv/pool pyramid; the
/// head is branchy — the deepest feature map detects at a coarse grid while
/// an upsample + concat path fuses it with the earlier, finer map for a
/// second detection grid. Exactly the shapes the graph IR exists for: the
/// hard-coded CNV builder could never express the branch.
///
/// detection_library() is the Library Generator's detection counterpart,
/// but weights-free: it sweeps channel-pruning rates over the yolo graph,
/// lowers each pruned variant to hls geometry, and prices it with the same
/// analytical perf / resource / power / reconfig models the CNV path uses.
/// Detection quality per version comes from an analytic mAP-proxy curve
/// (pruning a detection head degrades localization superlinearly) instead
/// of a training loop — the serving layers only consume the (fps, accuracy,
/// power) rows, so the library is drop-in for the Runtime Manager, the
/// fleet, and the dse tuner.

#include <cstdint>
#include <vector>

#include "adaflow/core/library.hpp"
#include "adaflow/fpga/device.hpp"
#include "adaflow/fpga/power.hpp"
#include "adaflow/graph/graph.hpp"

namespace adaflow::detect {

/// Parameters of the tiny YOLO-style graph.
struct YoloTopology {
  std::string name = "YoloTinyW4A4";
  std::int64_t input_channels = 3;
  std::int64_t input_dim = 64;
  /// Backbone conv widths. The first entry is the patchify stem — a 2x2
  /// stride-2 conv that halves the spatial dim immediately (a stride-1 3x3
  /// stem on 3 input channels has a hard full-unroll cycle floor that would
  /// pin every pruned version to the same FPS); each later entry is
  /// conv(3x3, pad 1) + threshold + 2x2 pool, halving the dim again.
  std::vector<std::int64_t> backbone_channels = {16, 32, 64, 128};
  std::int64_t head_channels = 64;  ///< 3x3 conv width of each detection head
  std::int64_t anchors = 3;
  std::int64_t classes = 4;
  graph::QuantInfo quant{4, 4, 0.5f};

  /// Channels of one detection output: anchors * (box(4) + objectness + classes).
  std::int64_t head_out_channels() const { return anchors * (5 + classes); }

  /// Throws ConfigError naming the offending field.
  void validate() const;
};

YoloTopology yolo_tiny();

/// Builds the detection graph: backbone pyramid, coarse head on the deepest
/// map, and a fine head on upsample(deepest) ++ second-deepest. \p rate
/// channel-prunes every conv EXCEPT the 1x1 detection outputs (their width
/// is fixed by anchors/classes); widths land on max(4, even) counts.
graph::Graph yolo_graph(const YoloTopology& topology, double rate = 0.0);

/// Geometry-only library sweep configuration.
struct DetectionLibraryConfig {
  std::vector<double> rates = {0.0, 0.15, 0.30, 0.45, 0.60};
  double target_base_fps = 900.0;  ///< shared worst-case folding sized for this
  double base_map = 0.82;          ///< mAP proxy of the unpruned detector
  /// mAP proxy of a pruned version: base_map * (1 - penalty * achieved^1.5).
  double prune_map_penalty = 0.30;
  /// Flexible dynamic-power floor (always-clocked control fabric fraction).
  double flexible_toggle_floor = 0.35;
  fpga::ResourceModelConstants resource_constants = fpga::default_resource_constants();
  fpga::PowerModelConstants power_constants = fpga::default_power_constants();

  /// Throws ConfigError naming the offending field.
  void validate() const;
};

/// Sweeps \p config.rates over yolo_graph(topology, rate) and fills a
/// core::AcceleratorLibrary priced by the analytical models — every version
/// carries the shared worst-case folding (the untuned generator path; the
/// dse tuner can retune per-version foldings via dse::explore_graph). The
/// library's topology_hash is the unpruned graph's, so the TSV cache can
/// never hand a CNV library to a detection run or vice versa.
core::AcceleratorLibrary detection_library(const fpga::FpgaDevice& device,
                                           const YoloTopology& topology = yolo_tiny(),
                                           const DetectionLibraryConfig& config = {});

}  // namespace adaflow::detect
