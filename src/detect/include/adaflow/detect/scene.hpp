#pragma once

/// \file scene.hpp
/// Scene-density model for the detection workload. Where the classification
/// serving layer only varies the frame ARRIVAL rate, a detection pipeline
/// also varies per-frame COST: the NMS postprocess is O(n^2) in the number
/// of candidate boxes, which tracks how crowded the scene is. SceneTrace is
/// the piecewise-constant object-density signal both effects are driven
/// from — workload_from_scene() couples it to the arrival rate
/// (event-triggered cameras upload more when more is moving), and the
/// per-frame service model (pipeline.hpp) draws each frame's ground-truth
/// object count from the density at service time.

#include <cstdint>
#include <vector>

#include "adaflow/edge/workload.hpp"

namespace adaflow::detect {

/// Piecewise-constant expected-objects-per-frame trace (the detection
/// counterpart of edge::WorkloadTrace). Segment i spans
/// [times[i], times[i+1]) at densities[i]; the last segment runs to
/// duration_s.
class SceneTrace {
 public:
  /// Throws ConfigError on empty/mismatched vectors, a first boundary != 0,
  /// unsorted times, negative densities, or a duration before the last
  /// boundary.
  SceneTrace(std::vector<double> times, std::vector<double> densities, double duration_s);

  /// Expected ground-truth objects per frame at time \p t.
  double density_at(double t) const;

  const std::vector<double>& change_times() const { return times_; }
  const std::vector<double>& segment_densities() const { return densities_; }
  double duration() const { return duration_; }

  /// The same trace with every density multiplied by \p factor — the
  /// scene-density sweep axis of bench_detect.
  SceneTrace scaled(double factor) const;

 private:
  std::vector<double> times_;
  std::vector<double> densities_;
  double duration_ = 0.0;
};

/// Rush hour: \p base_density until \p onset_s, a linear ramp to
/// \p peak_density over \p ramp_s, a hold of \p hold_s, then a symmetric
/// ramp back down — sampled every \p step_s with multiplicative noise
/// U(1-jitter, 1+jitter) drawn from \p seed. The canonical trace where a
/// static accelerator either wastes area (sized for the peak) or sheds
/// frames (sized for the base).
SceneTrace rush_hour_scene(double base_density, double peak_density, double onset_s,
                           double ramp_s, double hold_s, double duration_s, double step_s,
                           double jitter, std::uint64_t seed);

/// Couples scene density to the frame arrival rate: event-triggered cameras
/// stream \p base_fps when the scene is empty and add \p fps_per_object per
/// expected object. Segment boundaries are the scene's, so the workload and
/// the per-frame cost shift together — the double squeeze the adaptive
/// manager has to absorb.
edge::WorkloadTrace workload_from_scene(const SceneTrace& scene, double base_fps,
                                        double fps_per_object);

}  // namespace adaflow::detect
