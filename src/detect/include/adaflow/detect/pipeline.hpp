#pragma once

/// \file pipeline.hpp
/// Per-frame detection postprocess model: seeded box proposals, greedy NMS
/// whose pair count is the O(n^2) cost driver, greedy IoU matching against
/// ground truth, and an F1-style mAP proxy. This is the analytical stand-in
/// for a YOLO decode + NMS stage, the same way perf.cpp stands in for RTL
/// simulation: it does not run a network, it reproduces the COST and QUALITY
/// surface one induces — candidate counts scale with scene density, box
/// quality with the serving mode's accuracy (the pruned model's mAP proxy),
/// and everything draws from an explicit Rng so runs replay bit-identically.

#include <cstdint>
#include <vector>

#include "adaflow/common/rng.hpp"

namespace adaflow::detect {

/// An axis-aligned box in the unit image with its detector confidence.
struct Box {
  double x1 = 0.0, y1 = 0.0, x2 = 0.0, y2 = 0.0;
  double confidence = 0.0;
};

/// Intersection-over-union of two boxes (0 for degenerate operands).
double iou(const Box& a, const Box& b);

/// Cost/quality knobs of the detection head + postprocess.
struct DetectorModel {
  double anchors_per_object = 3.0;  ///< mean raw proposals per true object
  double false_candidates = 3.0;    ///< mean clutter proposals at accuracy 1.0 baseline
  double nms_iou_threshold = 0.45;  ///< suppress overlaps above this IoU
  double match_iou = 0.5;           ///< kept box counts as TP above this IoU
  double crowd_penalty = 0.02;      ///< per-object detection-probability loss
  double candidate_cost_s = 2e-6;   ///< decode cost per raw proposal
  double pair_cost_s = 0.2e-6;      ///< cost per IoU comparison inside NMS

  /// Throws ConfigError naming the offending field.
  void validate() const;
};

/// Everything one simulated frame produced (the service model folds this
/// into sim::DetectionStats and the frame's FrameService).
struct FrameOutcome {
  std::int64_t objects = 0;     ///< ground-truth boxes drawn this frame
  std::int64_t candidates = 0;  ///< raw proposals entering NMS
  std::int64_t suppressed = 0;  ///< proposals NMS removed
  std::int64_t kept = 0;        ///< surviving detections
  std::int64_t nms_pairs = 0;   ///< IoU pairs compared (the O(n^2) cost)
  std::int64_t true_positives = 0;
  std::int64_t false_positives = 0;
  std::int64_t missed = 0;
  double postprocess_s = 0.0;  ///< decode + NMS seconds for this frame
  double map_proxy = 0.0;      ///< tp / (tp + 0.5 (fp + missed)); 1 for a clean empty frame
};

/// Greedy confidence-ordered NMS over \p boxes: the canonical algorithm,
/// with a deterministic (confidence, x1, y1) sort so equal-confidence boxes
/// never reorder between runs. Returns the kept boxes in pick order and adds
/// every IoU comparison to \p pairs_compared.
std::vector<Box> greedy_nms(std::vector<Box> boxes, double iou_threshold,
                            std::int64_t* pairs_compared);

/// Simulates one frame at scene \p density under a model of \p accuracy
/// (the serving mode's mAP proxy): draws Poisson(density) ground-truth
/// objects, jittered proposals plus clutter, runs greedy_nms, matches kept
/// boxes to ground truth greedily at match_iou, and prices the postprocess.
/// Same (rng state, density, accuracy, model) -> same outcome.
FrameOutcome simulate_frame(Rng& rng, double density, double accuracy,
                            const DetectorModel& model);

}  // namespace adaflow::detect
