#pragma once

/// \file runner.hpp
/// End-to-end detection serving: attaches the per-frame detection service
/// model (scene density -> NMS cost + mAP-proxy quality) to edge/fleet
/// devices and drives single-device runs. With the service model installed,
/// RunMetrics::qoe() IS the detection QoE — mean per-frame mAP proxy times
/// the processed-frame fraction (lost frames score zero, exactly like the
/// paper's accuracy-based QoE).

#include <cstdint>
#include <memory>
#include <vector>

#include "adaflow/core/library.hpp"
#include "adaflow/detect/pipeline.hpp"
#include "adaflow/detect/scene.hpp"
#include "adaflow/edge/device_sim.hpp"
#include "adaflow/edge/policy.hpp"
#include "adaflow/edge/server_types.hpp"

namespace adaflow::detect {

/// Binds one SceneTrace + DetectorModel to any number of devices. attach()
/// installs a per-device service model with its own deterministic Rng stream
/// (derived from seed and the device's salt), so fleet runs replay
/// bit-identically regardless of device count. The workload must outlive
/// every simulation it is attached to.
class DetectionWorkload {
 public:
  /// Throws ConfigError on an invalid \p model.
  DetectionWorkload(SceneTrace scene, DetectorModel model, std::uint64_t seed);

  /// Installs the detection service model on \p device. \p salt
  /// distinguishes per-device streams (fleet: the device index). Frame
  /// outcomes are folded into device.metrics().detection.
  void attach(edge::DeviceSim& device, std::uint64_t salt = 0);

  const SceneTrace& scene() const { return scene_; }
  const DetectorModel& model() const { return model_; }

 private:
  SceneTrace scene_;
  DetectorModel model_;
  std::uint64_t seed_;
  std::vector<std::unique_ptr<Rng>> streams_;  ///< stable addresses for the hooks
};

/// Arrival coupling + per-frame model of one detection run.
struct DetectionRunConfig {
  DetectorModel detector;
  double base_fps = 200.0;        ///< camera floor rate (empty scene)
  double fps_per_object = 120.0;  ///< extra uploads per unit scene density
};

/// Runs one single-device detection simulation: Poisson arrivals from
/// workload_from_scene(scene), the detection service model attached, the
/// usual monitor/sample cadences. Same (scene, policy state, config, seed)
/// -> bit-identical RunMetrics.
edge::RunMetrics run_detection(const SceneTrace& scene, edge::ServingPolicy& policy,
                               const edge::ServerConfig& server,
                               const DetectionRunConfig& config, std::uint64_t seed);

/// Baseline: the shared Flexible-Pruning accelerator statically serving one
/// version (default: unpruned) — sub-ms switches available but never used.
/// bench_detect's static counterpart to StaticFinnPolicy on the Fixed side.
class StaticFlexiblePolicy final : public edge::ServingPolicy {
 public:
  explicit StaticFlexiblePolicy(const core::AcceleratorLibrary& library,
                                std::size_t version = 0);
  edge::ServingMode initial_mode() override;
  std::optional<edge::SwitchAction> on_poll(double, double) override { return std::nullopt; }

 private:
  const core::AcceleratorLibrary& library_;
  std::size_t version_;
};

}  // namespace adaflow::detect
