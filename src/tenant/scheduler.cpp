#include "adaflow/tenant/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace adaflow::tenant {

// --- WfqIngress -------------------------------------------------------------

WfqIngress::WfqIngress(std::vector<ClassConfig> classes) : classes_(std::move(classes)) {
  require(!classes_.empty(), "WfqIngress needs at least one class");
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    require(std::isfinite(classes_[c].weight) && classes_[c].weight > 0.0,
            "WfqIngress class " + std::to_string(c) + " weight must be positive");
    require(classes_[c].capacity >= 1,
            "WfqIngress class " + std::to_string(c) + " capacity must be >= 1");
  }
  queues_.resize(classes_.size());
  last_finish_.assign(classes_.size(), 0.0);
  rejected_.assign(classes_.size(), 0);
}

std::size_t WfqIngress::class_of(std::int64_t tag) const {
  require(tag >= 0, "WfqIngress frames must carry tenant tags (tag >= 0)");
  const std::size_t cls = tag_tenant(tag);
  require(cls < classes_.size(),
          "frame tag names tenant " + std::to_string(cls) + " but only " +
              std::to_string(classes_.size()) + " classes are configured");
  return cls;
}

bool WfqIngress::push(std::int64_t tag) {
  const std::size_t cls = class_of(tag);
  if (static_cast<std::int64_t>(queues_[cls].size()) >= classes_[cls].capacity) {
    ++rejected_[cls];
    return false;
  }
  const double finish = std::max(vtime_, last_finish_[cls]) + 1.0 / classes_[cls].weight;
  last_finish_[cls] = finish;
  queues_[cls].push_back(Entry{tag, finish});
  ++size_;
  return true;
}

std::int64_t WfqIngress::pop() {
  require(size_ > 0, "pop on an empty WfqIngress");
  std::size_t best = classes_.size();
  double best_finish = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < queues_.size(); ++c) {
    if (!queues_[c].empty() && queues_[c].front().finish < best_finish) {
      best_finish = queues_[c].front().finish;
      best = c;
    }
  }
  const Entry entry = queues_[best].front();
  queues_[best].pop_front();
  --size_;
  vtime_ = entry.finish;
  return entry.tag;
}

void WfqIngress::unpop(std::int64_t tag) {
  const std::size_t cls = class_of(tag);
  // The frame keeps its place: re-enter at the head of its class with the
  // current virtual time (== the finish tag pop() just consumed), so the
  // next pop returns it before anything pushed later. Capacity is not
  // re-checked — the slot was still accounted to this frame.
  queues_[cls].push_front(Entry{tag, vtime_});
  ++size_;
}

// --- TenantRouter -----------------------------------------------------------

TenantRouter::TenantRouter(std::size_t tenant_count, std::size_t device_count, bool allow_borrow,
                           double switching_penalty_s, double foreign_penalty_s)
    : tenant_count_(tenant_count), allow_borrow_(allow_borrow),
      switching_penalty_s_(switching_penalty_s), foreign_penalty_s_(foreign_penalty_s) {
  require(tenant_count_ >= 1, "TenantRouter needs at least one tenant");
  require(device_count >= 1, "TenantRouter needs at least one device");
  owner_.resize(device_count);
  for (std::size_t i = 0; i < device_count; ++i) {
    owner_[i] = i % tenant_count_;  // round-robin until the coordinator plans
  }
}

void TenantRouter::assign(std::size_t device, std::size_t tenant) {
  require(device < owner_.size() && tenant < tenant_count_, "assign out of range");
  owner_[device] = tenant;
}

double TenantRouter::score(const fleet::DeviceStatus& s, bool foreign) const {
  return s.backlog_s + (s.switching ? switching_penalty_s_ : 0.0) +
         (foreign ? foreign_penalty_s_ : 0.0);
}

std::size_t TenantRouter::route(double, const std::vector<fleet::DeviceStatus>& devices) {
  std::size_t best = kDecline;
  double best_score = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < devices.size(); ++i) {
    if (!devices[i].eligible) {
      continue;
    }
    const double sc = score(devices[i], /*foreign=*/false);
    if (sc < best_score) {
      best_score = sc;
      best = i;
    }
  }
  return best;  // the dispatcher guarantees at least one eligible device
}

std::size_t TenantRouter::route_tagged(double now_s, std::int64_t tag,
                                       const std::vector<fleet::DeviceStatus>& devices) {
  if (tag < 0) {
    return route(now_s, devices);  // anonymous traffic: no partition to honour
  }
  const std::size_t cls = tag_tenant(tag);
  if (cls >= tenant_count_) {
    return route(now_s, devices);
  }
  std::size_t best = kDecline;
  double best_score = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < devices.size() && i < owner_.size(); ++i) {
    if (!devices[i].eligible) {
      continue;
    }
    const bool foreign = owner_[i] != cls;
    if (foreign && !allow_borrow_) {
      continue;
    }
    const double sc = score(devices[i], foreign);
    if (sc < best_score) {
      best_score = sc;
      best = i;
    }
  }
  return best;  // kDecline when the partition is full and borrowing is off
}

}  // namespace adaflow::tenant
