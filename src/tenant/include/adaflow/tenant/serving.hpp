#pragma once

/// \file serving.hpp
/// The multi-tenant serving run: N tenants (tenant.hpp) share one
/// fleet::FleetEngine. Every admitted frame is tagged with its tenant id and
/// flows through token-bucket admission -> ingress scheduling (FIFO or WFQ,
/// scheduler.hpp) -> the tenant-partition router -> a device, and reports
/// back through the engine's done/lost hooks into per-tenant QoE,
/// SLO-violation and latency accounting (fleet::TenantUsage).
///
/// The tenant coordinator replaces the engine's single-class coordinator:
/// each tick it measures every tenant's admitted rate, feeds a per-tenant
/// forecast tracker, and — under PartitionPolicy::kRateAware — re-plans the
/// device split and per-tenant library versions against the predicted rates
/// (coordinator.hpp), applying device moves instantly and version switches
/// opportunistically (only on near-idle devices, spaced by the paper's
/// switch-interval rule). PartitionPolicy::kPeakFps plans once at t=0 and
/// never adapts — the static baseline bench_tenant measures against.

#include <cstdint>
#include <vector>

#include "adaflow/core/library.hpp"
#include "adaflow/dse/rate_planner.hpp"
#include "adaflow/fleet/fleet.hpp"
#include "adaflow/forecast/tracker.hpp"
#include "adaflow/tenant/coordinator.hpp"
#include "adaflow/tenant/tenant.hpp"

namespace adaflow::tenant {

enum class SchedulerPolicy {
  kFifo,  ///< one shared FIFO ingress queue (the pre-tenant engine default)
  kWfq,   ///< per-tenant weighted-fair classes (scheduler.hpp)
};

struct MultiTenantConfig {
  std::vector<TenantSpec> tenants;
  int devices = 8;
  SchedulerPolicy scheduler = SchedulerPolicy::kWfq;
  PartitionPolicy partition = PartitionPolicy::kRateAware;
  /// Work-conserving borrowing: an overloaded partition may spill onto the
  /// least-loaded foreign device. Off = hard partition (frames wait at
  /// ingress for their own devices — pairs with the static baseline).
  bool allow_borrow = true;
  double duration_s = 40.0;
  /// SLO/violation judgment cadence (one violation-second bucket per window).
  double sample_interval_s = 0.5;
  double coordinator_interval_s = 0.5;
  double warmup_s = 1.0;  ///< no re-planning before the rate estimate fills
  double fps_margin = 1.10;
  /// A version switch is only commanded on a device whose backlog is below
  /// this (opportunistic switching keeps reconfig stalls off hot queues).
  double switch_backlog_limit_s = 0.02;
  /// Per-device spacing between commanded switches, in units of the
  /// library's reconfiguration time (the paper's 10x switch-interval rule).
  double switch_spacing_factor = 10.0;
  /// Plan against max(measured, forecast) per tenant instead of measured.
  bool predictive = true;
  forecast::ForecastTrackerConfig forecast;
  std::int64_t device_queue_capacity = 8;
  /// Shared-FIFO depth (SchedulerPolicy::kFifo; WFQ classes use each
  /// tenant's own ingress_capacity).
  std::int64_t fifo_ingress_capacity = 192;
  fleet::HealthConfig health;  ///< dispatcher resilience; off by default
  /// When set, each tenant additionally gets a data-rate-aware folding plan
  /// for this model (dse::plan_folding_for_rate at its mean offered rate
  /// over its device share) in TenantResult — the folding-level view of
  /// rate-matching. Must outlive the run.
  const nn::Model* folding_model = nullptr;

  /// Throws ConfigError naming the offending tenant/field.
  void validate() const;
};

/// One tenant's outcome (usage counts live in fleet.tenants too).
struct TenantResult {
  fleet::TenantUsage usage;
  double latency_p50_s = 0.0;
  double latency_p95_s = 0.0;
  double latency_p99_s = 0.0;
  double mean_accuracy = 0.0;      ///< delivered accuracy mean
  double accuracy_floor = 0.0;     ///< library base accuracy - threshold
  /// Mean delivered accuracy over the windows where the tenant's offered
  /// rate stayed within its admitted budget — the acceptance criterion's
  /// "QoE while within budget" view.
  double in_budget_accuracy = 0.0;
  std::int64_t in_budget_delivered = 0;
  double offered_rate_mean_fps = 0.0;
  std::size_t final_version = 0;       ///< version of the tenant's first device at t_end
  std::int64_t version_switches = 0;   ///< switches commanded on its devices
  /// Rate-matched folding for folding_model (zeroed when unset): the
  /// parallelism rate-matching needs vs the peak-provisioned folding.
  dse::RateFoldingPlan folding_plan;
  std::int64_t peak_parallelism = 0;
};

struct MultiTenantMetrics {
  fleet::FleetMetrics fleet;  ///< fleet.tenants holds the per-tenant usage rows
  std::vector<TenantResult> tenants;
  double worst_violation_s = 0.0;  ///< max per-tenant SLO-violation seconds
  double total_violation_s = 0.0;
  std::int64_t device_moves = 0;      ///< partition reassignments applied
  std::int64_t version_switches = 0;  ///< version switches commanded
  sim::ForecastStats forecast;        ///< pooled per-tenant tracker quality

  /// Bit-identical-replay comparison over every per-tenant counter,
  /// violation clock, latency histogram, and the fleet totals.
  bool identical(const MultiTenantMetrics& other) const;
};

/// Runs the multi-tenant simulation; (config, library, seed) replays
/// bit-identically.
MultiTenantMetrics run_tenants(const MultiTenantConfig& config,
                               const core::AcceleratorLibrary& library, std::uint64_t seed);

}  // namespace adaflow::tenant
