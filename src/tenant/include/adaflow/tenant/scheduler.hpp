#pragma once

/// \file scheduler.hpp
/// The two scheduling components the multi-tenant layer plugs into the
/// fleet engine:
///
///  - WfqIngress: a weighted-fair ingress queue (start-time fair queuing /
///    SCFQ virtual-time discipline) replacing the engine's FIFO. Each tenant
///    is one bounded class; a bursting tenant can fill only its own class
///    while the virtual-time order keeps handing dispatch slots to the
///    others in weight proportion — FIFO's head-of-line blocking is gone.
///
///  - TenantRouter: a tag-aware RoutingPolicy that prefers the frame's
///    tenant's own device partition (least backlog within it) and either
///    borrows the least-loaded foreign device (work-conserving soft
///    partition) or declines so the frame waits at ingress (hard partition —
///    the static baseline).

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "adaflow/fleet/engine.hpp"
#include "adaflow/fleet/routing.hpp"
#include "adaflow/tenant/tenant.hpp"

namespace adaflow::tenant {

/// Weighted-fair (SCFQ) ingress queue over per-tenant bounded classes.
///
/// Each pushed frame gets a virtual finish time F = max(V, F_last[class]) +
/// 1/weight; pop always serves the smallest finish time and advances the
/// virtual clock V to it. Backlogged classes therefore share dispatch slots
/// in weight proportion regardless of arrival bursts, and an idle class
/// re-enters at the current virtual time instead of claiming credit for its
/// idle past.
class WfqIngress final : public fleet::IngressQueue {
 public:
  struct ClassConfig {
    double weight = 1.0;
    std::int64_t capacity = 64;
  };

  /// Class index = tenant index of the frame tag (tag_tenant). All pushed
  /// tags must be >= 0 and decode to a configured class.
  explicit WfqIngress(std::vector<ClassConfig> classes);

  bool empty() const override { return size_ == 0; }
  std::size_t size() const override { return size_; }
  bool push(std::int64_t tag) override;
  std::int64_t pop() override;
  void unpop(std::int64_t tag) override;

  std::size_t class_count() const { return classes_.size(); }
  std::size_t backlog(std::size_t cls) const { return queues_[cls].size(); }
  /// Frames rejected because class \p cls was full (per-tenant shed base).
  std::int64_t rejected(std::size_t cls) const { return rejected_[cls]; }

 private:
  struct Entry {
    std::int64_t tag = 0;
    double finish = 0.0;
  };

  std::size_t class_of(std::int64_t tag) const;

  std::vector<ClassConfig> classes_;
  std::vector<std::deque<Entry>> queues_;
  std::vector<double> last_finish_;
  std::vector<std::int64_t> rejected_;
  double vtime_ = 0.0;
  std::size_t size_ = 0;
};

/// Tag-aware partition router. Every device has an owner tenant; a frame
/// routes to the least-backlogged eligible device of its owner partition
/// (switching devices and foreign devices carry additive penalties, so owned
/// idle capacity always wins). With borrowing enabled an overloaded
/// partition spills onto foreign devices (work-conserving); without it the
/// router declines and the frame waits at ingress until its own partition
/// has headroom — the hard static partition of the baseline.
class TenantRouter final : public fleet::RoutingPolicy {
 public:
  TenantRouter(std::size_t tenant_count, std::size_t device_count, bool allow_borrow,
               double switching_penalty_s = 0.1, double foreign_penalty_s = 0.05);

  std::string name() const override { return "tenant-partition"; }
  /// Untagged traffic: plain least-backlog over all eligible devices.
  std::size_t route(double now_s, const std::vector<fleet::DeviceStatus>& devices) override;
  std::size_t route_tagged(double now_s, std::int64_t tag,
                           const std::vector<fleet::DeviceStatus>& devices) override;

  void assign(std::size_t device, std::size_t tenant);
  std::size_t owner(std::size_t device) const { return owner_[device]; }
  const std::vector<std::size_t>& assignment() const { return owner_; }

 private:
  double score(const fleet::DeviceStatus& s, bool foreign) const;

  std::size_t tenant_count_;
  std::vector<std::size_t> owner_;  ///< device -> tenant (round-robin start)
  bool allow_borrow_;
  double switching_penalty_s_;
  double foreign_penalty_s_;
};

}  // namespace adaflow::tenant
