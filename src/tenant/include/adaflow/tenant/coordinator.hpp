#pragma once

/// \file coordinator.hpp
/// Pure planning logic of the multi-tenant coordinator: given each tenant's
/// predicted aggregate rate, split the device fleet (largest-remainder
/// proportional shares, at least one device each) and pick each tenant's
/// library version. Two partitioning policies:
///
///  - kPeakFps: the static baseline — every tenant gets the fastest version
///    inside its accuracy threshold, shares are demand-blind (equal). This
///    maximizes raw FPS and minimizes delivered accuracy.
///  - kRateAware: the data-rate-aware policy — each tenant's per-device
///    share of its *predicted* rate picks the most accurate version that
///    still meets that rate (core::select_library_version with an fps
///    margin). Accuracy is bought back wherever the offered rate leaves
///    slack, and a predicted rise re-provisions before it lands.
///
/// Keeping this free of the event queue makes the policy unit-testable with
/// hand-written rate vectors; the serving layer applies plans to the live
/// engine (device reassignment + gated mode switches).

#include <cstdint>
#include <vector>

#include "adaflow/core/library.hpp"
#include "adaflow/tenant/tenant.hpp"

namespace adaflow::tenant {

enum class PartitionPolicy {
  kPeakFps,    ///< static: fastest version within threshold, equal shares
  kRateAware,  ///< rate-matched versions, demand-proportional shares
};

/// What the planner needs to know about one tenant.
struct TenantPlanInput {
  double predicted_rate_fps = 0.0;  ///< forecast-floored aggregate rate
  double accuracy_threshold = 0.10;
  const core::AcceleratorLibrary* library = nullptr;  ///< null = fleet library
};

struct PartitionPlan {
  std::vector<int> device_count;        ///< tenant -> devices allocated
  std::vector<std::size_t> version;     ///< tenant -> library version index
  std::vector<double> per_device_fps;   ///< tenant -> planned per-device rate
};

/// Proportional integer split of \p total devices over \p demands by largest
/// remainder, guaranteeing >= 1 per tenant (requires total >= tenants).
/// All-zero demand splits evenly. Deterministic tie-breaking (fractional
/// part desc, then index asc).
std::vector<int> split_devices(const std::vector<double>& demands, int total);

/// Full plan for \p tenants over \p total_devices (see PartitionPolicy).
PartitionPlan plan_partition(const std::vector<TenantPlanInput>& tenants,
                             const core::AcceleratorLibrary& fleet_library, int total_devices,
                             PartitionPolicy policy, double fps_margin);

/// Minimal-churn device reassignment: keeps every device whose owner still
/// has budget in place, then hands surplus devices (highest index first) to
/// tenants under their target count (lowest tenant first). Returns the new
/// device -> tenant owner vector.
std::vector<std::size_t> rebalance_owners(const std::vector<std::size_t>& current,
                                          const std::vector<int>& target_counts);

}  // namespace adaflow::tenant
