#pragma once

/// \file tenant.hpp
/// Multi-tenant serving core types. A Tenant bundles everything one
/// customer/model brings to the cluster: a traffic trace (offered load), an
/// accuracy threshold bounding which library versions may serve it, a
/// latency SLO, a WFQ weight, and a token-bucket admission budget. The
/// serving layer (serving.hpp) runs N tenants against one fleet::FleetEngine
/// by tagging every admitted frame with its tenant id.
///
/// Frame tags: tenant frames pack (tenant index, sequence) into the int64
/// tag the fleet engine carries end to end — tenant in the high bits,
/// sequence in the low kTenantSeqBits. Tags stay non-negative, so they never
/// collide with edge::DeviceSim::kNoTag (-1) or the engine's internal
/// duplicate-hedge tags (< -1).

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "adaflow/common/error.hpp"
#include "adaflow/core/library.hpp"
#include "adaflow/edge/workload.hpp"

namespace adaflow::tenant {

/// Bits of the frame tag holding the per-tenant sequence number. 2^40
/// frames per tenant and 2^23 tenants — neither bound is reachable in a
/// simulated run.
constexpr int kTenantSeqBits = 40;

inline std::int64_t make_tag(std::size_t tenant_index, std::int64_t seq) {
  return (static_cast<std::int64_t>(tenant_index) << kTenantSeqBits) | seq;
}
inline std::size_t tag_tenant(std::int64_t tag) {
  return static_cast<std::size_t>(tag >> kTenantSeqBits);
}
inline std::int64_t tag_seq(std::int64_t tag) {
  return tag & ((std::int64_t{1} << kTenantSeqBits) - 1);
}

/// Per-tenant latency/throughput service-level objective, judged per sample
/// window (see serving.hpp): a window with admitted traffic violates when
/// nothing was delivered, the window's p95 capture->result latency exceeds
/// max_latency_s, or fewer than min_deliver_fraction of the admitted frames
/// came back.
struct TenantSlo {
  double max_latency_s = 0.1;
  double min_deliver_fraction = 0.5;

  void validate(const std::string& tenant) const;
};

/// Token-bucket admission budget: sustained rate_fps with burst_frames of
/// depth. Frames over budget are throttled at the door — they never reach
/// the fleet ingress, so one tenant's flash crowd cannot convert into
/// cluster-wide queueing.
struct AdmissionConfig {
  double rate_fps = 1000.0;
  double burst_frames = 32.0;

  void validate(const std::string& tenant) const;
};

/// Deterministic token bucket (continuous refill, no randomness).
class TokenBucket {
 public:
  explicit TokenBucket(const AdmissionConfig& config)
      : rate_(config.rate_fps), burst_(config.burst_frames), tokens_(config.burst_frames) {}

  /// Take one token at time \p now (seconds, nondecreasing); false = over
  /// budget right now.
  bool try_take(double now) {
    tokens_ = std::min(burst_, tokens_ + (now - last_s_) * rate_);
    last_s_ = now;
    if (tokens_ < 1.0) {
      return false;
    }
    tokens_ -= 1.0;
    return true;
  }

  double tokens() const { return tokens_; }

 private:
  double rate_;
  double burst_;
  double tokens_;
  double last_s_ = 0.0;
};

/// One tenant of the multi-tenant serving layer.
struct TenantSpec {
  std::string name;
  /// Weighted-fair-queuing weight: the tenant's guaranteed share of ingress
  /// dispatch slots under contention is weight / sum(weights).
  double weight = 1.0;
  /// Max accuracy drop from the library's base accuracy this tenant
  /// tolerates; bounds which versions the coordinator may serve it from.
  double accuracy_threshold = 0.10;
  TenantSlo slo;
  AdmissionConfig admission;
  /// Offered traffic (piecewise-constant aggregate FPS); arrivals are
  /// Poisson at the trace rate.
  edge::WorkloadTrace trace{std::vector<double>{0.0}, std::vector<double>{0.0}, 1.0};
  /// Depth of this tenant's WFQ ingress class.
  std::int64_t ingress_capacity = 64;
  /// Library this tenant is served from; null = the run's shared library.
  /// Must outlive the run.
  const core::AcceleratorLibrary* library = nullptr;

  void validate() const;
};

}  // namespace adaflow::tenant
