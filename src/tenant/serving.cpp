#include "adaflow/tenant/serving.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <optional>
#include <unordered_map>

#include "adaflow/common/rng.hpp"
#include "adaflow/fleet/engine.hpp"
#include "adaflow/sim/event_queue.hpp"
#include "adaflow/tenant/scheduler.hpp"

namespace adaflow::tenant {

namespace {

/// Per-tenant arrival-stream salt: tenant t's Poisson draws are independent
/// of every other tenant's and of the device fault streams.
constexpr std::uint64_t kArrivalSalt = 0x54454e414e545331ULL;

std::uint64_t tenant_seed(std::uint64_t seed, std::size_t t) {
  return seed ^ kArrivalSalt ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(t + 1));
}

}  // namespace

void MultiTenantConfig::validate() const {
  if (tenants.empty()) {
    throw ConfigError("MultiTenantConfig.tenants must not be empty");
  }
  for (const TenantSpec& t : tenants) {
    t.validate();
  }
  if (devices < static_cast<int>(tenants.size()) || devices > 256) {
    throw ConfigError("MultiTenantConfig.devices must be in [tenant count, 256]");
  }
  auto positive = [](double v, const char* field) {
    if (!(std::isfinite(v) && v > 0.0)) {
      throw ConfigError(std::string("MultiTenantConfig.") + field + " must be positive");
    }
  };
  positive(duration_s, "duration_s");
  positive(sample_interval_s, "sample_interval_s");
  positive(coordinator_interval_s, "coordinator_interval_s");
  if (!(std::isfinite(warmup_s) && warmup_s >= 0.0)) {
    throw ConfigError("MultiTenantConfig.warmup_s must be >= 0");
  }
  if (!(std::isfinite(fps_margin) && fps_margin >= 1.0)) {
    throw ConfigError("MultiTenantConfig.fps_margin must be >= 1");
  }
  if (!(std::isfinite(switch_backlog_limit_s) && switch_backlog_limit_s >= 0.0)) {
    throw ConfigError("MultiTenantConfig.switch_backlog_limit_s must be >= 0");
  }
  if (!(std::isfinite(switch_spacing_factor) && switch_spacing_factor >= 0.0)) {
    throw ConfigError("MultiTenantConfig.switch_spacing_factor must be >= 0");
  }
  if (device_queue_capacity < 1) {
    throw ConfigError("MultiTenantConfig.device_queue_capacity must be >= 1");
  }
  if (fifo_ingress_capacity < 1) {
    throw ConfigError("MultiTenantConfig.fifo_ingress_capacity must be >= 1");
  }
  health.validate();
  forecast.validate();
}

bool MultiTenantMetrics::identical(const MultiTenantMetrics& other) const {
  if (tenants.size() != other.tenants.size() || device_moves != other.device_moves ||
      version_switches != other.version_switches ||
      worst_violation_s != other.worst_violation_s ||
      total_violation_s != other.total_violation_s) {
    return false;
  }
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    const fleet::TenantUsage& a = tenants[t].usage;
    const fleet::TenantUsage& b = other.tenants[t].usage;
    if (a.offered != b.offered || a.admitted != b.admitted || a.throttled != b.throttled ||
        a.shed != b.shed || a.delivered != b.delivered || a.lost != b.lost ||
        a.qoe_accuracy_sum != b.qoe_accuracy_sum || a.slo_violation_s != b.slo_violation_s ||
        !a.latency.identical(b.latency)) {
      return false;
    }
  }
  return fleet.arrived == other.fleet.arrived && fleet.dispatched == other.fleet.dispatched &&
         fleet.ingress_lost == other.fleet.ingress_lost &&
         fleet.redispatched == other.fleet.redispatched && fleet.hedged == other.fleet.hedged &&
         fleet.processed == other.fleet.processed &&
         fleet.qoe_accuracy_sum == other.fleet.qoe_accuracy_sum &&
         fleet.reconfigurations == other.fleet.reconfigurations;
}

namespace {

/// The whole simulation on one stack frame (the ingest-pipeline pattern):
/// components hold references into each other, so construction order is
/// destruction order reversed and nothing dangles.
struct TenantSim {
  const MultiTenantConfig& config;
  const core::AcceleratorLibrary& library;

  sim::EventQueue queue;
  std::vector<const core::AcceleratorLibrary*> tenant_lib;
  fleet::FleetConfig fleet_config;
  TenantRouter router;
  std::optional<WfqIngress> wfq;
  std::optional<fleet::FleetEngine> engine;

  struct TenantState {
    TokenBucket bucket;
    std::optional<forecast::ForecastTracker> tracker;
    Rng rng;
    std::int64_t seq = 0;
    fleet::TenantUsage usage;
    // Current sample window.
    std::int64_t w_offered = 0;
    std::int64_t w_admitted = 0;
    std::int64_t w_delivered = 0;
    double w_quality = 0.0;
    std::vector<double> w_latencies;
    // In-budget QoE aggregation (see TenantResult::in_budget_accuracy).
    double in_budget_quality = 0.0;
    std::int64_t in_budget_delivered = 0;
    // Coordinator rate measurement.
    std::int64_t coord_admitted_snap = 0;
  };
  std::vector<TenantState> tenants;

  std::unordered_map<std::int64_t, double> pending;  ///< tag -> admission time
  std::vector<double> last_switch_s;                 ///< per device
  MultiTenantMetrics out;

  TenantSim(const MultiTenantConfig& cfg, const core::AcceleratorLibrary& lib,
            std::uint64_t seed)
      : config(cfg), library(lib),
        router(cfg.tenants.size(), static_cast<std::size_t>(cfg.devices), cfg.allow_borrow) {
    for (const TenantSpec& t : cfg.tenants) {
      tenant_lib.push_back(t.library != nullptr ? t.library : &lib);
      require(!tenant_lib.back()->versions.empty(),
              "tenant '" + t.name + "' library has no versions");
    }

    // Initial partition from the traces' t=0 rates (the only signal before
    // any traffic); kPeakFps ignores the rates and splits evenly.
    const PartitionPlan plan = plan_partition(plan_inputs_at_start(), lib, cfg.devices,
                                              cfg.partition, cfg.fps_margin);
    std::size_t device = 0;
    for (std::size_t t = 0; t < cfg.tenants.size(); ++t) {
      for (int k = 0; k < plan.device_count[t]; ++k, ++device) {
        router.assign(device, t);
        fleet::FleetDevice d = fleet::pinned_device("dev" + std::to_string(device),
                                                    *tenant_lib[t], plan.version[t]);
        d.coordinated = false;  // the tenant coordinator owns re-planning
        d.server.queue_capacity = cfg.device_queue_capacity;
        fleet_config.devices.push_back(std::move(d));
      }
    }
    fleet_config.ingress_capacity = cfg.fifo_ingress_capacity;
    fleet_config.sample_interval_s = cfg.sample_interval_s;
    fleet_config.health = cfg.health;
    // The engine's own single-class coordinator stays off.
    fleet_config.coordinator.enabled = false;

    engine.emplace(queue, lib, fleet_config, router, seed, cfg.duration_s);
    if (cfg.scheduler == SchedulerPolicy::kWfq) {
      std::vector<WfqIngress::ClassConfig> classes;
      for (const TenantSpec& t : cfg.tenants) {
        classes.push_back(WfqIngress::ClassConfig{t.weight, t.ingress_capacity});
      }
      wfq.emplace(std::move(classes));
      engine->set_ingress_queue(*wfq);
    }

    forecast::ForecastTrackerConfig fc = cfg.forecast;
    fc.window_s = cfg.coordinator_interval_s;
    for (std::size_t t = 0; t < cfg.tenants.size(); ++t) {
      TenantState state{TokenBucket(cfg.tenants[t].admission), std::nullopt,
                        Rng(tenant_seed(seed, t)), 0, {}, 0, 0, 0, 0.0, {}, 0.0, 0, 0};
      state.usage.name = cfg.tenants[t].name;
      if (cfg.predictive) {
        state.tracker.emplace(fc);
      }
      tenants.push_back(std::move(state));
    }
    last_switch_s.assign(static_cast<std::size_t>(cfg.devices), -1e18);
    out.tenants.resize(cfg.tenants.size());
  }

  std::vector<TenantPlanInput> plan_inputs_at_start() const {
    std::vector<TenantPlanInput> inputs;
    for (std::size_t t = 0; t < config.tenants.size(); ++t) {
      TenantPlanInput in;
      in.predicted_rate_fps = config.tenants[t].trace.rate_at(0.0);
      in.accuracy_threshold = config.tenants[t].accuracy_threshold;
      in.library = tenant_lib[t];
      inputs.push_back(in);
    }
    return inputs;
  }

  // --- frame path -----------------------------------------------------------

  void on_done(std::int64_t tag, double accuracy) {
    const auto it = pending.find(tag);
    require(it != pending.end(), "frame done hook fired for an unknown tag");
    const double latency = queue.now() - it->second;
    pending.erase(it);
    TenantState& t = tenants[tag_tenant(tag)];
    ++t.usage.delivered;
    t.usage.qoe_accuracy_sum += accuracy;
    t.usage.latency.record(latency);
    ++t.w_delivered;
    t.w_quality += accuracy;
    t.w_latencies.push_back(latency);
  }

  void on_lost(std::int64_t tag) {
    const auto it = pending.find(tag);
    require(it != pending.end(), "frame lost hook fired for an unknown tag");
    pending.erase(it);
    ++tenants[tag_tenant(tag)].usage.lost;
  }

  void arrive(std::size_t t) {
    TenantState& state = tenants[t];
    ++state.usage.offered;
    ++state.w_offered;
    if (!state.bucket.try_take(queue.now())) {
      ++state.usage.throttled;
      return;
    }
    ++state.usage.admitted;
    ++state.w_admitted;
    const std::int64_t tag = make_tag(t, state.seq++);
    pending.emplace(tag, queue.now());
    if (engine->offer_frame(tag) == fleet::FleetEngine::Admit::kShed) {
      ++state.usage.shed;
      pending.erase(tag);
    }
  }

  void schedule_next_arrival(std::size_t t) {
    const edge::WorkloadTrace& trace = config.tenants[t].trace;
    const double rate = trace.rate_at(queue.now());
    if (rate <= 0.0) {
      // Re-check after the next rate boundary.
      if (queue.now() + 0.05 <= config.duration_s) {
        queue.schedule_in(0.05, [this, t] { schedule_next_arrival(t); });
      }
      return;
    }
    const double when = queue.now() + tenants[t].rng.exponential(rate);
    if (when <= config.duration_s) {
      queue.schedule_at(when, [this, t] {
        arrive(t);
        schedule_next_arrival(t);
      });
    }
  }

  // --- SLO sampling ---------------------------------------------------------

  void sample_window() {
    for (std::size_t t = 0; t < tenants.size(); ++t) {
      TenantState& state = tenants[t];
      const TenantSpec& spec = config.tenants[t];
      if (state.w_admitted > 0) {
        const double p95 = sim::percentile(state.w_latencies, 0.95);
        const bool starved = state.w_delivered == 0;
        const bool too_slow = p95 > spec.slo.max_latency_s;
        const bool too_lossy =
            static_cast<double>(state.w_delivered) <
            spec.slo.min_deliver_fraction * static_cast<double>(state.w_admitted);
        if (starved || too_slow || too_lossy) {
          state.usage.slo_violation_s += config.sample_interval_s;
        }
      }
      const double offered_rate =
          static_cast<double>(state.w_offered) / config.sample_interval_s;
      if (offered_rate <= spec.admission.rate_fps * 1.05) {
        state.in_budget_quality += state.w_quality;
        state.in_budget_delivered += state.w_delivered;
      }
      state.w_offered = 0;
      state.w_admitted = 0;
      state.w_delivered = 0;
      state.w_quality = 0.0;
      state.w_latencies.clear();
    }
    const double next = queue.now() + config.sample_interval_s;
    if (next <= config.duration_s + 1e-9) {
      queue.schedule_at(next, [this] { sample_window(); });
    }
  }

  // --- tenant coordinator ---------------------------------------------------

  double predicted_rate(std::size_t t, double measured) {
    TenantState& state = tenants[t];
    if (!state.tracker.has_value()) {
      return measured;
    }
    state.tracker->observe(measured);
    if (state.tracker->forecaster().observations() < 2) {
      return measured;
    }
    // A predicted fall never de-provisions early; a predicted rise
    // re-provisions while the old rate still holds.
    return std::max(measured, state.tracker->current().rate);
  }

  void coordinator_tick() {
    const double now = queue.now();
    std::vector<TenantPlanInput> inputs(tenants.size());
    for (std::size_t t = 0; t < tenants.size(); ++t) {
      TenantState& state = tenants[t];
      const double measured =
          static_cast<double>(state.usage.admitted - state.coord_admitted_snap) /
          config.coordinator_interval_s;
      state.coord_admitted_snap = state.usage.admitted;
      inputs[t].predicted_rate_fps = predicted_rate(t, measured);
      inputs[t].accuracy_threshold = config.tenants[t].accuracy_threshold;
      inputs[t].library = tenant_lib[t];
    }
    if (config.partition == PartitionPolicy::kRateAware && now >= config.warmup_s) {
      apply_plan(now, plan_partition(inputs, library, config.devices,
                                     PartitionPolicy::kRateAware, config.fps_margin));
    }
    // Frames a hard partition declined earlier get another look whenever the
    // plan (or simply time) moved.
    engine->pump();
    const double next = now + config.coordinator_interval_s;
    if (next <= config.duration_s) {
      queue.schedule_at(next, [this] { coordinator_tick(); });
    }
  }

  void apply_plan(double now, const PartitionPlan& plan) {
    const std::vector<std::size_t> owners =
        rebalance_owners(router.assignment(), plan.device_count);
    for (std::size_t i = 0; i < owners.size(); ++i) {
      if (router.owner(i) != owners[i]) {
        router.assign(i, owners[i]);
        ++out.device_moves;
      }
    }
    for (std::size_t i = 0; i < owners.size(); ++i) {
      const std::size_t t = owners[i];
      const core::AcceleratorLibrary& lib = *tenant_lib[t];
      const std::size_t target = plan.version[t];
      const edge::DeviceSim& dev = engine->device(i);
      if (dev.switch_in_flight()) {
        continue;
      }
      const std::size_t current = fleet::find_version(lib, dev.mode().model_version);
      const bool mode_matches =
          current == target &&
          std::abs(dev.mode().fps - lib.versions[target].fps_fixed) < 1e-9;
      if (mode_matches) {
        continue;
      }
      // Opportunistic switching: never park a hot queue behind a reconfig,
      // and keep the paper's switch-interval spacing per device.
      if (dev.backlog_seconds() > config.switch_backlog_limit_s ||
          now - last_switch_s[i] < config.switch_spacing_factor * lib.reconfig_time_s) {
        continue;
      }
      edge::SwitchAction action;
      action.target = fleet::fixed_mode_for(lib, target);
      action.switch_time_s = lib.reconfig_time_s;
      action.is_reconfiguration = true;
      engine->command_device_switch(i, action);
      last_switch_s[i] = now;
      ++out.version_switches;
      ++out.tenants[t].version_switches;
    }
  }

  // --- lifecycle ------------------------------------------------------------

  MultiTenantMetrics run() {
    engine->set_frame_hooks(
        [this](std::int64_t tag, double accuracy) { on_done(tag, accuracy); },
        [this](std::int64_t tag) { on_lost(tag); });
    engine->start();
    for (std::size_t t = 0; t < tenants.size(); ++t) {
      schedule_next_arrival(t);
    }
    queue.schedule_at(config.sample_interval_s, [this] { sample_window(); });
    queue.schedule_at(config.coordinator_interval_s, [this] { coordinator_tick(); });
    queue.run_until(config.duration_s);
    finalize();
    return std::move(out);
  }

  void finalize() {
    out.fleet = engine->finalize(config.duration_s);
    RateFoldingPlanCache folding = make_folding_cache();
    for (std::size_t t = 0; t < tenants.size(); ++t) {
      TenantState& state = tenants[t];
      TenantResult& r = out.tenants[t];
      r.usage = state.usage;
      r.latency_p50_s = r.usage.latency.percentile(0.50);
      r.latency_p95_s = r.usage.latency.percentile(0.95);
      r.latency_p99_s = r.usage.latency.percentile(0.99);
      r.mean_accuracy = r.usage.delivered > 0
                            ? r.usage.qoe_accuracy_sum / static_cast<double>(r.usage.delivered)
                            : 0.0;
      r.accuracy_floor =
          tenant_lib[t]->base_accuracy - config.tenants[t].accuracy_threshold;
      r.in_budget_delivered = state.in_budget_delivered;
      r.in_budget_accuracy =
          state.in_budget_delivered > 0
              ? state.in_budget_quality / static_cast<double>(state.in_budget_delivered)
              : 0.0;
      r.offered_rate_mean_fps =
          static_cast<double>(r.usage.offered) / config.duration_s;
      r.final_version = final_version_of(t);
      fill_folding_plan(t, folding, r);
      out.worst_violation_s = std::max(out.worst_violation_s, r.usage.slo_violation_s);
      out.total_violation_s += r.usage.slo_violation_s;
      if (state.tracker.has_value()) {
        out.forecast.accumulate(state.tracker->stats());
      }
      out.fleet.tenants.push_back(r.usage);
    }
  }

  std::size_t final_version_of(std::size_t t) const {
    for (std::size_t i = 0; i < router.assignment().size(); ++i) {
      if (router.owner(i) == t) {
        return fleet::find_version(*tenant_lib[t], engine->device(i).mode().model_version);
      }
    }
    return tenant_lib[t]->versions.size();
  }

  struct RateFoldingPlanCache {
    bool enabled = false;
    std::int64_t peak_parallelism = 0;
  };

  RateFoldingPlanCache make_folding_cache() const {
    RateFoldingPlanCache cache;
    if (config.folding_model != nullptr) {
      cache.enabled = true;
      cache.peak_parallelism =
          dse::plan_peak_folding(*config.folding_model, dse::RatePlanConfig{}).parallelism;
    }
    return cache;
  }

  void fill_folding_plan(std::size_t t, const RateFoldingPlanCache& cache, TenantResult& r) {
    if (!cache.enabled || r.offered_rate_mean_fps <= 0.0) {
      return;
    }
    int devices_of_t = 0;
    for (const std::size_t owner : router.assignment()) {
      devices_of_t += owner == t ? 1 : 0;
    }
    r.folding_plan = dse::plan_folding_for_rate(*config.folding_model, r.offered_rate_mean_fps,
                                                std::max(devices_of_t, 1),
                                                dse::RatePlanConfig{});
    r.peak_parallelism = cache.peak_parallelism;
  }
};

}  // namespace

MultiTenantMetrics run_tenants(const MultiTenantConfig& config,
                               const core::AcceleratorLibrary& library, std::uint64_t seed) {
  config.validate();
  require(!library.versions.empty(), "tenant fleet library has no versions");
  TenantSim sim(config, library, seed);
  return sim.run();
}

}  // namespace adaflow::tenant
