#include "adaflow/tenant/coordinator.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "adaflow/core/runtime_manager.hpp"

namespace adaflow::tenant {

std::vector<int> split_devices(const std::vector<double>& demands, int total) {
  const int n = static_cast<int>(demands.size());
  require(n >= 1, "split_devices needs at least one tenant");
  require(total >= n, "split_devices needs at least one device per tenant");
  double sum = 0.0;
  for (const double d : demands) {
    require(std::isfinite(d) && d >= 0.0, "split_devices demands must be finite and >= 0");
    sum += d;
  }
  std::vector<int> counts(static_cast<std::size_t>(n), 0);
  std::vector<double> fraction(static_cast<std::size_t>(n), 0.0);
  int assigned = 0;
  for (int t = 0; t < n; ++t) {
    const double quota = sum > 0.0 ? static_cast<double>(total) * demands[t] / sum
                                   : static_cast<double>(total) / n;
    counts[t] = static_cast<int>(std::floor(quota));
    fraction[t] = quota - std::floor(quota);
    assigned += counts[t];
  }
  // Largest remainder for the leftover devices.
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](int a, int b) { return fraction[a] > fraction[b]; });
  for (int k = 0; assigned < total; ++k) {
    ++counts[order[static_cast<std::size_t>(k % n)]];
    ++assigned;
  }
  // Everyone serves: move devices from the biggest allocation to empty
  // tenants (deterministic: always the current maximum, lowest index wins).
  for (int t = 0; t < n; ++t) {
    while (counts[t] == 0) {
      const auto richest = std::max_element(counts.begin(), counts.end());
      require(*richest > 1, "split_devices cannot cover every tenant");
      --*richest;
      ++counts[t];
    }
  }
  return counts;
}

PartitionPlan plan_partition(const std::vector<TenantPlanInput>& tenants,
                             const core::AcceleratorLibrary& fleet_library, int total_devices,
                             PartitionPolicy policy, double fps_margin) {
  require(!tenants.empty(), "plan_partition needs at least one tenant");
  PartitionPlan plan;
  std::vector<double> demands(tenants.size(), 0.0);
  if (policy == PartitionPolicy::kRateAware) {
    for (std::size_t t = 0; t < tenants.size(); ++t) {
      demands[t] = tenants[t].predicted_rate_fps;
    }
  }  // kPeakFps: demand-blind equal shares (all-zero demand vector)
  plan.device_count = split_devices(demands, total_devices);
  plan.version.resize(tenants.size());
  plan.per_device_fps.resize(tenants.size());
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    const core::AcceleratorLibrary& lib =
        tenants[t].library != nullptr ? *tenants[t].library : fleet_library;
    plan.per_device_fps[t] =
        tenants[t].predicted_rate_fps / static_cast<double>(plan.device_count[t]);
    // kPeakFps provisions for an unreachable demand, which resolves to the
    // fastest version inside the accuracy threshold; kRateAware asks for the
    // most accurate version that still clears the per-device share.
    const double demand =
        policy == PartitionPolicy::kPeakFps ? lib.versions.back().fps_fixed * 1e6
                                            : plan.per_device_fps[t];
    plan.version[t] = core::select_library_version(lib, demand, tenants[t].accuracy_threshold,
                                                   fps_margin, /*use_flexible_fps=*/false);
  }
  return plan;
}

std::vector<std::size_t> rebalance_owners(const std::vector<std::size_t>& current,
                                          const std::vector<int>& target_counts) {
  std::vector<std::size_t> owners = current;
  std::vector<int> have(target_counts.size(), 0);
  for (const std::size_t t : owners) {
    require(t < target_counts.size(), "rebalance_owners owner out of range");
    ++have[t];
  }
  require(std::accumulate(target_counts.begin(), target_counts.end(), 0) ==
              static_cast<int>(owners.size()),
          "rebalance_owners target counts must cover every device");
  // Free surplus devices highest-index-first so low-index devices keep
  // stable ownership, then hand them to under-target tenants in index order.
  for (std::size_t t = 0; t < target_counts.size(); ++t) {
    for (std::size_t i = owners.size(); i-- > 0 && have[t] > target_counts[t];) {
      if (owners[i] == t) {
        owners[i] = target_counts.size();  // parked
        --have[t];
      }
    }
  }
  for (std::size_t t = 0; t < target_counts.size(); ++t) {
    for (std::size_t i = 0; i < owners.size() && have[t] < target_counts[t]; ++i) {
      if (owners[i] == target_counts.size()) {
        owners[i] = t;
        ++have[t];
      }
    }
  }
  return owners;
}

}  // namespace adaflow::tenant
