#include "adaflow/tenant/tenant.hpp"

#include <cmath>

namespace adaflow::tenant {

namespace {
void check(bool ok, const std::string& tenant, const char* what) {
  if (!ok) {
    throw ConfigError("tenant '" + tenant + "': " + what);
  }
}
}  // namespace

void TenantSlo::validate(const std::string& tenant) const {
  check(std::isfinite(max_latency_s) && max_latency_s > 0.0, tenant,
        "slo.max_latency_s must be positive");
  check(std::isfinite(min_deliver_fraction) && min_deliver_fraction >= 0.0 &&
            min_deliver_fraction <= 1.0,
        tenant, "slo.min_deliver_fraction must be in [0, 1]");
}

void AdmissionConfig::validate(const std::string& tenant) const {
  check(std::isfinite(rate_fps) && rate_fps > 0.0, tenant, "admission.rate_fps must be positive");
  check(std::isfinite(burst_frames) && burst_frames >= 1.0, tenant,
        "admission.burst_frames must be >= 1");
}

void TenantSpec::validate() const {
  check(!name.empty(), name, "name must not be empty");
  check(std::isfinite(weight) && weight > 0.0, name, "weight must be positive");
  check(std::isfinite(accuracy_threshold) && accuracy_threshold >= 0.0, name,
        "accuracy_threshold must be >= 0");
  check(ingress_capacity >= 1, name, "ingress_capacity must be >= 1");
  slo.validate(name);
  admission.validate(name);
}

}  // namespace adaflow::tenant
