#pragma once

/// \file fault_injector.hpp
/// Deterministic fault injection for the Edge-serving simulation.
///
/// Real ZCU104-class deployments do not reconfigure in exactly ~145 ms every
/// time: partial-reconfiguration loads abort or hang, the rate monitor
/// glitches, an in-flight frame can stall the accelerator, and the camera
/// fleet occasionally bursts past the provisioned rate. The FaultInjector
/// replays such events from an explicit schedule, drawing every probabilistic
/// decision from its own seeded Rng so a (schedule, seed) pair yields a
/// bit-identical run every time — faults are as reproducible as the workload.
///
/// The injector is passive: the Edge server consults it at well-defined
/// points (switch attempt, monitor poll, frame start, arrival scheduling) and
/// reacts according to its fault-tolerance configuration.

#include <cstdint>
#include <string>
#include <vector>

#include "adaflow/common/rng.hpp"

namespace adaflow::faults {

/// The fault classes the injector can arm. Three families share the enum:
///
/// - Per-opportunity faults (reconfig failure/slowdown, monitor glitches,
///   stalls, bursts) draw at each switch attempt / poll / frame start.
/// - Whole-device faults (crash / hang / degrade) manifest per WINDOW: the
///   decision is drawn ONCE at injector construction, so the device can
///   pre-schedule begin/end events and replay stays bit-identical.
/// - Ingest-path faults (network outage, decode fault) draw once per frame
///   transmitted / decode started inside the window.
///
/// kConfigUpset is the silent-data-corruption class (src/integrity): its
/// Poisson arrival times are resolved at construction like the whole-device
/// windows, so the shard engine's fingerprint equivalence survives.
enum class FaultKind {
  kReconfigFailure,   ///< a reconfiguration aborts; the old configuration stays
  kReconfigSlowdown,  ///< a switch takes `magnitude` x its nominal time
  kMonitorDropout,    ///< a rate poll returns the previous (stale) estimate
  kMonitorNoise,      ///< a rate poll is perturbed by +-`magnitude` relative error
  kAcceleratorStall,  ///< the in-flight frame hangs for `magnitude` seconds
  kQueueBurst,        ///< arrival rate is multiplied by `magnitude` in the window
  kDeviceCrash,       ///< whole-device: dead during the window — the in-flight
                      ///< frame is lost and nothing is served until the
                      ///< scheduled recovery (reboot) at end_s
  kDeviceHang,        ///< whole-device: accepts frames but completes none
                      ///< until end_s releases it
  kDeviceDegrade,     ///< whole-device: service runs `magnitude` x slower and
                      ///< each processed frame loses `accuracy_penalty` of its
                      ///< accuracy (mispredictions)
  kNetworkOutage,     ///< ingest path: each frame transmitted in the window is
                      ///< lost with `probability` (flapping uplink)
  kDecodeFault,       ///< ingest path: each decode started in the window fails
                      ///< with `probability` (corrupt bitstream at the decoder)
  kConfigUpset,       ///< silent corruption: configuration-memory upsets (SEUs)
                      ///< arrive as a Poisson stream of rate `magnitude` per
                      ///< second in the window, each thinned by `probability`;
                      ///< an upset durably costs the loaded variant
                      ///< `accuracy_penalty` of its accuracy (scaled by the
                      ///< Flexible overlay's smaller cross-section) until a
                      ///< reload repairs the fabric
};

inline constexpr int kFaultKindCount = 12;

const char* fault_kind_name(FaultKind kind);

/// One scheduled fault: \p kind is armed during [start_s, end_s) and fires
/// with \p probability at each opportunity (each switch attempt, poll, frame
/// start ...). Whole-device kinds (crash/hang/degrade) instead draw their
/// probability once per window. \p magnitude is kind-specific (see FaultKind).
struct FaultSpec {
  FaultKind kind = FaultKind::kReconfigFailure;
  double start_s = 0.0;
  double end_s = 0.0;
  double probability = 1.0;
  double magnitude = 1.0;
  /// kDeviceDegrade: fraction of per-frame accuracy lost in the window.
  /// kConfigUpset: fraction of accuracy one upset durably costs a loaded
  /// Fixed bitstream (the Flexible overlay scales it by its cross-section).
  double accuracy_penalty = 0.0;
  /// kConfigUpset only: the shared Flexible overlay exposes fewer essential
  /// configuration bits than a per-version Fixed bitstream, so an upset that
  /// lands while Flexible is loaded costs only this fraction of
  /// `accuracy_penalty`. Must be in [0, 1].
  double flexible_cross_section = 0.25;
};

/// One manifested whole-device fault window (crash, hang, or degraded
/// service), resolved at injector construction from the seed.
struct DeviceFaultWindow {
  FaultKind kind = FaultKind::kDeviceCrash;
  double start_s = 0.0;
  double end_s = 0.0;             ///< scheduled recovery / release time
  double latency_factor = 1.0;    ///< kDeviceDegrade: service-time multiplier
  double accuracy_penalty = 0.0;  ///< kDeviceDegrade: accuracy lost per frame
};

/// One manifested configuration-memory upset (kConfigUpset), resolved at
/// injector construction: the Poisson arrival times and thinning draws are
/// consumed from the seed up front, so the device can pre-schedule the upset
/// events and a (schedule, seed) pair replays bit-identically. The penalty
/// the fabric actually takes depends on the variant loaded at `time_s`:
/// `accuracy_penalty` on a Fixed bitstream, `accuracy_penalty *
/// flexible_cross_section` on the shared Flexible overlay.
struct ConfigUpsetEvent {
  double time_s = 0.0;
  double accuracy_penalty = 0.0;
  double flexible_cross_section = 0.25;
};

struct FaultSchedule {
  std::vector<FaultSpec> faults;

  /// Throws ConfigError on negative/NaN times, probability outside [0, 1],
  /// inverted windows, or negative magnitudes.
  void validate() const;
};

/// Canned schedule: every reconfiguration attempted in [start_s, end_s) fails
/// with \p probability, and surviving ones run \p slowdown x slower half the
/// time — the "flaky PR controller" scenario used by bench_faults. The
/// default slowdown stays inside the hardened server's 3x supervision
/// budget; pass a larger factor to exercise the timeout/abort path instead.
FaultSchedule reconfig_failure_storm(double start_s, double end_s, double probability = 0.9,
                                     double slowdown = 2.0);

/// Canned schedule: noisy monitor (+-40%), occasional dropouts, sporadic
/// accelerator stalls and one arrival burst — a generally hostile edge box.
FaultSchedule flaky_edge_schedule(double duration_s);

/// Canned whole-device windows (probability 1): the device is dead in
/// [crash_s, recovery_s), wedged in [hang_s, release_s), or serves
/// `latency_factor` x slower with `accuracy_penalty` extra mispredictions in
/// [start_s, end_s).
FaultSchedule device_crash_window(double crash_s, double recovery_s);
FaultSchedule device_hang_window(double hang_s, double release_s);
FaultSchedule device_degrade_window(double start_s, double end_s, double latency_factor,
                                    double accuracy_penalty = 0.0);

/// Canned ingest schedules: frames transmitted in [start_s, end_s) are lost
/// with \p probability (network outage), or decodes started in the window
/// fail with \p probability (decode-fault burst).
FaultSchedule network_outage_window(double start_s, double end_s, double probability = 1.0);
FaultSchedule decode_fault_window(double start_s, double end_s, double probability);

/// Canned silent-corruption schedule: configuration upsets arrive at
/// \p upsets_per_s in [start_s, end_s), each durably costing a loaded Fixed
/// bitstream \p accuracy_penalty of its accuracy (the Flexible overlay takes
/// only \p flexible_cross_section of that) until a reload scrubs the fabric.
FaultSchedule config_upset_storm(double start_s, double end_s, double upsets_per_s,
                                 double accuracy_penalty = 0.08,
                                 double flexible_cross_section = 0.25);

class FaultInjector {
 public:
  FaultInjector(FaultSchedule schedule, std::uint64_t seed);

  /// Outcome of one switch attempt (retries consult the injector again).
  struct SwitchOutcome {
    bool fail = false;         ///< the switch aborts; the target mode never loads
    double time_factor = 1.0;  ///< actual switch time = factor x nominal
  };
  /// Only reconfigurations are subject to kReconfigFailure/kReconfigSlowdown;
  /// the Flexible fast switch involves no bitstream and is the safety net.
  SwitchOutcome on_switch_attempt(double now_s, bool is_reconfiguration);

  /// Outcome of one monitor poll.
  struct PollOutcome {
    bool dropout = false;       ///< estimate is stale: reuse the last reported one
    double noise_factor = 1.0;  ///< multiply the estimate by this
  };
  PollOutcome on_rate_poll(double now_s);

  /// Seconds the frame started at \p now_s hangs before completing
  /// (0 = healthy frame).
  double stall_seconds(double now_s);

  /// Multiplier applied to the workload arrival rate at \p now_s (>1 during
  /// a kQueueBurst window). Deterministic: bursts ignore `probability`.
  double arrival_rate_factor(double now_s);

  /// True when the frame transmitted at \p now_s is lost to a scheduled
  /// kNetworkOutage window (drawn per frame).
  bool network_drop(double now_s);

  /// True when the decode started at \p now_s fails to a scheduled
  /// kDecodeFault window (drawn per decode).
  bool decode_fault(double now_s);

  /// Whole-device fault windows that manifested (drawn from the seed at
  /// construction), in schedule order. The device pre-schedules its
  /// crash/hang/degrade begin and end events from this list.
  const std::vector<DeviceFaultWindow>& device_fault_windows() const {
    return device_windows_;
  }

  /// Configuration upsets that manifested (Poisson arrivals drawn from the
  /// seed at construction), in schedule order, time-ascending within each
  /// kConfigUpset spec. The device pre-schedules one corruption event per
  /// entry; how hard each hits depends on the variant loaded when it lands.
  const std::vector<ConfigUpsetEvent>& config_upset_events() const {
    return upset_events_;
  }

  /// Number of manifested faults of one kind / in total so far.
  int injected(FaultKind kind) const;
  int injected_total() const;

 private:
  bool draw(const FaultSpec& spec);

  FaultSchedule schedule_;
  Rng rng_;
  int injected_[kFaultKindCount] = {};
  std::vector<char> burst_counted_;  ///< each burst window counted once
  std::vector<DeviceFaultWindow> device_windows_;
  std::vector<ConfigUpsetEvent> upset_events_;
};

}  // namespace adaflow::faults
