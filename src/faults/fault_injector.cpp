#include "adaflow/faults/fault_injector.hpp"

#include <cmath>

#include "adaflow/common/error.hpp"

namespace adaflow::faults {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kReconfigFailure:
      return "reconfig-failure";
    case FaultKind::kReconfigSlowdown:
      return "reconfig-slowdown";
    case FaultKind::kMonitorDropout:
      return "monitor-dropout";
    case FaultKind::kMonitorNoise:
      return "monitor-noise";
    case FaultKind::kAcceleratorStall:
      return "accelerator-stall";
    case FaultKind::kQueueBurst:
      return "queue-burst";
    case FaultKind::kDeviceCrash:
      return "device-crash";
    case FaultKind::kDeviceHang:
      return "device-hang";
    case FaultKind::kDeviceDegrade:
      return "device-degrade";
    case FaultKind::kNetworkOutage:
      return "network-outage";
    case FaultKind::kDecodeFault:
      return "decode-fault";
    case FaultKind::kConfigUpset:
      return "config-upset";
  }
  return "unknown";
}

namespace {
bool is_device_fault(FaultKind kind) {
  return kind == FaultKind::kDeviceCrash || kind == FaultKind::kDeviceHang ||
         kind == FaultKind::kDeviceDegrade;
}
}  // namespace

void FaultSchedule::validate() const {
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const FaultSpec& f = faults[i];
    const std::string where = "fault schedule entry " + std::to_string(i) + " (" +
                              fault_kind_name(f.kind) + "): ";
    require(std::isfinite(f.start_s) && f.start_s >= 0.0, where + "start_s must be finite >= 0");
    require(std::isfinite(f.end_s) && f.end_s >= f.start_s,
            where + "end_s must be finite >= start_s");
    require(std::isfinite(f.probability) && f.probability >= 0.0 && f.probability <= 1.0,
            where + "probability must be in [0, 1]");
    require(std::isfinite(f.magnitude) && f.magnitude >= 0.0,
            where + "magnitude must be finite >= 0");
    require(std::isfinite(f.accuracy_penalty) && f.accuracy_penalty >= 0.0 &&
                f.accuracy_penalty <= 1.0,
            where + "accuracy_penalty must be in [0, 1]");
    if (f.kind == FaultKind::kDeviceDegrade) {
      require(f.magnitude >= 1.0,
              where + "magnitude is the service-time multiplier and must be >= 1");
    }
    if (f.kind == FaultKind::kConfigUpset) {
      require(std::isfinite(f.flexible_cross_section) && f.flexible_cross_section >= 0.0 &&
                  f.flexible_cross_section <= 1.0,
              where + "flexible_cross_section must be in [0, 1]");
      require(f.accuracy_penalty > 0.0,
              where + "accuracy_penalty must be positive (an upset must corrupt something)");
    }
  }
}

FaultSchedule reconfig_failure_storm(double start_s, double end_s, double probability,
                                     double slowdown) {
  FaultSchedule s;
  s.faults.push_back(FaultSpec{FaultKind::kReconfigFailure, start_s, end_s, probability, 1.0});
  s.faults.push_back(FaultSpec{FaultKind::kReconfigSlowdown, start_s, end_s, 0.5, slowdown});
  return s;
}

FaultSchedule flaky_edge_schedule(double duration_s) {
  FaultSchedule s;
  s.faults.push_back(FaultSpec{FaultKind::kMonitorNoise, 0.0, duration_s, 0.3, 0.4});
  s.faults.push_back(FaultSpec{FaultKind::kMonitorDropout, 0.0, duration_s, 0.1, 1.0});
  s.faults.push_back(
      FaultSpec{FaultKind::kAcceleratorStall, 0.25 * duration_s, 0.5 * duration_s, 0.002, 1.5});
  s.faults.push_back(
      FaultSpec{FaultKind::kQueueBurst, 0.6 * duration_s, 0.7 * duration_s, 1.0, 1.8});
  return s;
}

FaultSchedule device_crash_window(double crash_s, double recovery_s) {
  FaultSchedule s;
  s.faults.push_back(FaultSpec{FaultKind::kDeviceCrash, crash_s, recovery_s, 1.0, 1.0, 0.0});
  return s;
}

FaultSchedule device_hang_window(double hang_s, double release_s) {
  FaultSchedule s;
  s.faults.push_back(FaultSpec{FaultKind::kDeviceHang, hang_s, release_s, 1.0, 1.0, 0.0});
  return s;
}

FaultSchedule device_degrade_window(double start_s, double end_s, double latency_factor,
                                    double accuracy_penalty) {
  FaultSchedule s;
  s.faults.push_back(FaultSpec{FaultKind::kDeviceDegrade, start_s, end_s, 1.0, latency_factor,
                               accuracy_penalty});
  return s;
}

FaultSchedule network_outage_window(double start_s, double end_s, double probability) {
  FaultSchedule s;
  s.faults.push_back(FaultSpec{FaultKind::kNetworkOutage, start_s, end_s, probability, 1.0, 0.0});
  return s;
}

FaultSchedule decode_fault_window(double start_s, double end_s, double probability) {
  FaultSchedule s;
  s.faults.push_back(FaultSpec{FaultKind::kDecodeFault, start_s, end_s, probability, 1.0, 0.0});
  return s;
}

FaultSchedule config_upset_storm(double start_s, double end_s, double upsets_per_s,
                                 double accuracy_penalty, double flexible_cross_section) {
  FaultSchedule s;
  FaultSpec spec;
  spec.kind = FaultKind::kConfigUpset;
  spec.start_s = start_s;
  spec.end_s = end_s;
  spec.probability = 1.0;
  spec.magnitude = upsets_per_s;
  spec.accuracy_penalty = accuracy_penalty;
  spec.flexible_cross_section = flexible_cross_section;
  s.faults.push_back(spec);
  return s;
}

FaultInjector::FaultInjector(FaultSchedule schedule, std::uint64_t seed)
    : schedule_(std::move(schedule)), rng_(seed) {
  schedule_.validate();
  burst_counted_.assign(schedule_.faults.size(), 0);
  // Whole-device windows and config upsets are resolved up front (in schedule
  // order: one Bernoulli draw per window, one Poisson arrival stream per
  // upset spec) so the outcome depends only on (schedule, seed) and the
  // device can pre-schedule its events. Schedules without these kinds consume
  // no draws here, so their replay is unchanged.
  for (const FaultSpec& f : schedule_.faults) {
    if (f.kind == FaultKind::kConfigUpset) {
      if (f.end_s <= f.start_s || f.magnitude <= 0.0) {
        continue;
      }
      double t = f.start_s + rng_.exponential(f.magnitude);
      while (t < f.end_s) {
        // The thinning draw runs per arrival regardless of outcome, so the
        // stream of consumed randomness depends only on (schedule, seed).
        if (draw(f)) {
          upset_events_.push_back(
              ConfigUpsetEvent{t, f.accuracy_penalty, f.flexible_cross_section});
          ++injected_[static_cast<int>(f.kind)];
        }
        t += rng_.exponential(f.magnitude);
      }
      continue;
    }
    if (!is_device_fault(f.kind) || f.end_s <= f.start_s || !draw(f)) {
      continue;
    }
    DeviceFaultWindow w;
    w.kind = f.kind;
    w.start_s = f.start_s;
    w.end_s = f.end_s;
    if (f.kind == FaultKind::kDeviceDegrade) {
      w.latency_factor = f.magnitude;
      w.accuracy_penalty = f.accuracy_penalty;
    }
    device_windows_.push_back(w);
    ++injected_[static_cast<int>(f.kind)];
  }
}

bool FaultInjector::draw(const FaultSpec& spec) {
  if (spec.probability >= 1.0) {
    return true;
  }
  if (spec.probability <= 0.0) {
    return false;
  }
  return rng_.bernoulli(spec.probability);
}

FaultInjector::SwitchOutcome FaultInjector::on_switch_attempt(double now_s,
                                                              bool is_reconfiguration) {
  SwitchOutcome out;
  if (!is_reconfiguration) {
    return out;  // the Flexible fast switch has no bitstream to corrupt
  }
  for (const FaultSpec& f : schedule_.faults) {
    if (now_s < f.start_s || now_s >= f.end_s) {
      continue;
    }
    if (f.kind == FaultKind::kReconfigFailure && !out.fail && draw(f)) {
      out.fail = true;
      ++injected_[static_cast<int>(f.kind)];
    } else if (f.kind == FaultKind::kReconfigSlowdown && draw(f)) {
      out.time_factor *= f.magnitude;
      ++injected_[static_cast<int>(f.kind)];
    }
  }
  return out;
}

FaultInjector::PollOutcome FaultInjector::on_rate_poll(double now_s) {
  PollOutcome out;
  for (const FaultSpec& f : schedule_.faults) {
    if (now_s < f.start_s || now_s >= f.end_s) {
      continue;
    }
    if (f.kind == FaultKind::kMonitorDropout && !out.dropout && draw(f)) {
      out.dropout = true;
      ++injected_[static_cast<int>(f.kind)];
    } else if (f.kind == FaultKind::kMonitorNoise && draw(f)) {
      out.noise_factor *= 1.0 + rng_.uniform(-f.magnitude, f.magnitude);
      ++injected_[static_cast<int>(f.kind)];
    }
  }
  return out;
}

double FaultInjector::stall_seconds(double now_s) {
  double stall = 0.0;
  for (const FaultSpec& f : schedule_.faults) {
    if (f.kind != FaultKind::kAcceleratorStall || now_s < f.start_s || now_s >= f.end_s) {
      continue;
    }
    if (draw(f)) {
      stall += f.magnitude;
      ++injected_[static_cast<int>(f.kind)];
    }
  }
  return stall;
}

double FaultInjector::arrival_rate_factor(double now_s) {
  double factor = 1.0;
  for (std::size_t i = 0; i < schedule_.faults.size(); ++i) {
    const FaultSpec& f = schedule_.faults[i];
    if (f.kind != FaultKind::kQueueBurst || now_s < f.start_s || now_s >= f.end_s) {
      continue;
    }
    factor *= f.magnitude;
    if (!burst_counted_[i]) {
      burst_counted_[i] = 1;
      ++injected_[static_cast<int>(f.kind)];
    }
  }
  return factor;
}

bool FaultInjector::network_drop(double now_s) {
  bool dropped = false;
  for (const FaultSpec& f : schedule_.faults) {
    if (f.kind != FaultKind::kNetworkOutage || now_s < f.start_s || now_s >= f.end_s) {
      continue;
    }
    if (!dropped && draw(f)) {
      dropped = true;
      ++injected_[static_cast<int>(f.kind)];
    }
  }
  return dropped;
}

bool FaultInjector::decode_fault(double now_s) {
  bool failed = false;
  for (const FaultSpec& f : schedule_.faults) {
    if (f.kind != FaultKind::kDecodeFault || now_s < f.start_s || now_s >= f.end_s) {
      continue;
    }
    if (!failed && draw(f)) {
      failed = true;
      ++injected_[static_cast<int>(f.kind)];
    }
  }
  return failed;
}

int FaultInjector::injected(FaultKind kind) const { return injected_[static_cast<int>(kind)]; }

int FaultInjector::injected_total() const {
  int total = 0;
  for (int count : injected_) {
    total += count;
  }
  return total;
}

}  // namespace adaflow::faults
