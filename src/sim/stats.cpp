#include "adaflow/sim/stats.hpp"

#include <algorithm>
#include <cmath>

#include "adaflow/common/error.hpp"

namespace adaflow::sim {

void RunningStat::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::stddev() const {
  if (count_ < 2) {
    return 0.0;
  }
  return std::sqrt(m2_ / static_cast<double>(count_ - 1));
}

TimeSeries average_series(const std::vector<TimeSeries>& runs) {
  require(!runs.empty(), "no series to average");
  TimeSeries out;
  out.interval_s = runs.front().interval_s;
  std::size_t len = runs.front().values.size();
  for (const TimeSeries& r : runs) {
    len = std::min(len, r.values.size());
  }
  out.values.assign(len, 0.0);
  for (const TimeSeries& r : runs) {
    for (std::size_t i = 0; i < len; ++i) {
      out.values[i] += r.values[i];
    }
  }
  for (double& v : out.values) {
    v /= static_cast<double>(runs.size());
  }
  return out;
}

double percentile(const std::vector<double>& values, double q) {
  require(q >= 0.0 && q <= 1.0, "percentile q must be in [0, 1]");
  if (values.empty()) {
    return 0.0;
  }
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  // Classical nearest-rank: rank ceil(q*N) in 1-based terms. The previous
  // llround(q*(N-1)) variant underestimated extreme tails on small N (e.g.
  // p999 of N=2 depended on rounding ties); ceil saturates the rank at N as
  // soon as N < 1/(1-q), so short runs report their maximum.
  const double scaled = q * static_cast<double>(sorted.size());
  const auto rank = static_cast<std::int64_t>(std::ceil(scaled));
  const std::int64_t idx =
      std::min<std::int64_t>(std::max<std::int64_t>(rank - 1, 0),
                             static_cast<std::int64_t>(sorted.size()) - 1);
  return sorted[static_cast<std::size_t>(idx)];
}

namespace {

/// Lower bound of histogram bucket \p i (upper bound = lower of i + 1).
double bucket_lower(int i) {
  if (i <= 0) {
    return 0.0;
  }
  constexpr double kGrowth = 1.0905077326652577;  // 2^(1/8)
  return LatencyHistogram::kMinSeconds * std::pow(kGrowth, static_cast<double>(i - 1));
}

int bucket_index(double seconds) {
  if (seconds < LatencyHistogram::kMinSeconds) {
    return 0;
  }
  const double ratio = seconds / LatencyHistogram::kMinSeconds;
  // log2(ratio) * 8 buckets per octave; +1 because bucket 0 is [0, min).
  const int idx = 1 + static_cast<int>(std::floor(std::log2(ratio) * 8.0));
  return std::min(idx, LatencyHistogram::kBuckets - 1);
}

}  // namespace

void LatencyHistogram::record(double seconds) {
  const double s = std::max(seconds, 0.0);
  if (count_ == 0) {
    min_s_ = max_s_ = s;
  } else {
    min_s_ = std::min(min_s_, s);
    max_s_ = std::max(max_s_, s);
  }
  ++count_;
  sum_s_ += s;
  ++buckets_[static_cast<std::size_t>(bucket_index(s))];
}

double LatencyHistogram::percentile(double q) const {
  require(q >= 0.0 && q <= 1.0, "LatencyHistogram percentile q must be in [0, 1]");
  if (count_ == 0) {
    return 0.0;
  }
  const auto rank = std::max<std::int64_t>(
      static_cast<std::int64_t>(std::ceil(q * static_cast<double>(count_))), 1);
  std::int64_t cumulative = 0;
  for (int i = 0; i < kBuckets; ++i) {
    const std::int64_t in_bucket = buckets_[static_cast<std::size_t>(i)];
    if (cumulative + in_bucket < rank) {
      cumulative += in_bucket;
      continue;
    }
    if (i == kBuckets - 1) {
      return max_s_;  // overflow bucket: the recorded maximum is exact
    }
    const double lo = bucket_lower(i);
    const double hi = bucket_lower(i + 1);
    const double frac =
        static_cast<double>(rank - cumulative) / static_cast<double>(in_bucket);
    const double estimate = lo + (hi - lo) * frac;
    return std::min(std::max(estimate, min_s_), max_s_);
  }
  return max_s_;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    min_s_ = other.min_s_;
    max_s_ = other.max_s_;
  } else {
    min_s_ = std::min(min_s_, other.min_s_);
    max_s_ = std::max(max_s_, other.max_s_);
  }
  count_ += other.count_;
  sum_s_ += other.sum_s_;
  for (int i = 0; i < kBuckets; ++i) {
    buckets_[static_cast<std::size_t>(i)] += other.buckets_[static_cast<std::size_t>(i)];
  }
}

namespace {

/// Shared empty-identity / truncate-to-shorter preamble of the series merge
/// helpers. Returns true when \p out was fully resolved by an empty operand.
bool merge_identity(const TimeSeries& a, const TimeSeries& b, TimeSeries& out) {
  if (a.values.empty()) {
    out = b;
    return true;
  }
  if (b.values.empty()) {
    out = a;
    return true;
  }
  return false;
}

}  // namespace

TimeSeries merge_sum_series(const TimeSeries& a, const TimeSeries& b) {
  TimeSeries out;
  if (merge_identity(a, b, out)) {
    return out;
  }
  const std::size_t len = std::min(a.values.size(), b.values.size());
  out.interval_s = a.interval_s;
  out.values.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    out.values.push_back(a.values[i] + b.values[i]);
  }
  return out;
}

TimeSeries merge_max_series(const TimeSeries& a, const TimeSeries& b) {
  TimeSeries out;
  if (merge_identity(a, b, out)) {
    return out;
  }
  const std::size_t len = std::min(a.values.size(), b.values.size());
  out.interval_s = a.interval_s;
  out.values.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    out.values.push_back(std::max(a.values[i], b.values[i]));
  }
  return out;
}

TimeSeries merge_weighted_series(const TimeSeries& a, const std::vector<double>& wa,
                                 const TimeSeries& b, const std::vector<double>& wb) {
  TimeSeries out;
  if (merge_identity(a, b, out)) {
    return out;
  }
  const std::size_t len = std::min(a.values.size(), b.values.size());
  require(wa.size() >= len && wb.size() >= len,
          "merge_weighted_series weights shorter than the series");
  out.interval_s = a.interval_s;
  out.values.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    const double w = wa[i] + wb[i];
    // Numerator-sum over weight-sum (not a mean of means): associative, and
    // re-derivable from the additive workload series it is weighted by.
    out.values.push_back(w > 0.0 ? (a.values[i] * wa[i] + b.values[i] * wb[i]) / w : 0.0);
  }
  return out;
}

bool LatencyHistogram::identical(const LatencyHistogram& other) const {
  return count_ == other.count_ && sum_s_ == other.sum_s_ && min_s_ == other.min_s_ &&
         max_s_ == other.max_s_ && buckets_ == other.buckets_;
}

void FaultStats::accumulate(const FaultStats& other) {
  reconfig_failures_injected += other.reconfig_failures_injected;
  reconfig_slowdowns_injected += other.reconfig_slowdowns_injected;
  monitor_dropouts += other.monitor_dropouts;
  monitor_noise_events += other.monitor_noise_events;
  stalls_injected += other.stalls_injected;
  burst_windows += other.burst_windows;
  device_crashes += other.device_crashes;
  device_hangs += other.device_hangs;
  degrade_windows += other.degrade_windows;
  network_outage_drops += other.network_outage_drops;
  decode_faults_injected += other.decode_faults_injected;
  switch_failures += other.switch_failures;
  switch_timeouts += other.switch_timeouts;
  switch_retries += other.switch_retries;
  fallbacks += other.fallbacks;
  switches_abandoned += other.switches_abandoned;
  stalls_recovered += other.stalls_recovered;
  overload_sheds += other.overload_sheds;
  time_degraded_s += other.time_degraded_s;
  recovery_time_sum_s += other.recovery_time_sum_s;
  recoveries += other.recoveries;
}

void FaultStats::divide(int runs) {
  require(runs > 0, "FaultStats::divide needs runs > 0");
  auto mean_count = [runs](std::int64_t v) {
    return static_cast<std::int64_t>(
        std::llround(static_cast<double>(v) / static_cast<double>(runs)));
  };
  reconfig_failures_injected = mean_count(reconfig_failures_injected);
  reconfig_slowdowns_injected = mean_count(reconfig_slowdowns_injected);
  monitor_dropouts = mean_count(monitor_dropouts);
  monitor_noise_events = mean_count(monitor_noise_events);
  stalls_injected = mean_count(stalls_injected);
  burst_windows = mean_count(burst_windows);
  device_crashes = mean_count(device_crashes);
  device_hangs = mean_count(device_hangs);
  degrade_windows = mean_count(degrade_windows);
  network_outage_drops = mean_count(network_outage_drops);
  decode_faults_injected = mean_count(decode_faults_injected);
  switch_failures = mean_count(switch_failures);
  switch_timeouts = mean_count(switch_timeouts);
  switch_retries = mean_count(switch_retries);
  fallbacks = mean_count(fallbacks);
  switches_abandoned = mean_count(switches_abandoned);
  stalls_recovered = mean_count(stalls_recovered);
  overload_sheds = mean_count(overload_sheds);
  time_degraded_s /= static_cast<double>(runs);
  recovery_time_sum_s /= static_cast<double>(runs);
  recoveries = mean_count(recoveries);
}

void IntegrityStats::accumulate(const IntegrityStats& other) {
  upsets_injected += other.upsets_injected;
  wrong_frames += other.wrong_frames;
  corrupt_time_s += other.corrupt_time_s;
  canaries_sent += other.canaries_sent;
  canaries_failed += other.canaries_failed;
  detections += other.detections;
  false_alarms += other.false_alarms;
  detection_latency_sum_s += other.detection_latency_sum_s;
  scrubs += other.scrubs;
  repairs += other.repairs;
}

void IntegrityStats::divide(int runs) {
  require(runs > 0, "IntegrityStats::divide needs runs > 0");
  auto mean_count = [runs](std::int64_t v) {
    return static_cast<std::int64_t>(
        std::llround(static_cast<double>(v) / static_cast<double>(runs)));
  };
  upsets_injected = mean_count(upsets_injected);
  wrong_frames = mean_count(wrong_frames);
  corrupt_time_s /= static_cast<double>(runs);
  canaries_sent = mean_count(canaries_sent);
  canaries_failed = mean_count(canaries_failed);
  detections = mean_count(detections);
  false_alarms = mean_count(false_alarms);
  detection_latency_sum_s /= static_cast<double>(runs);
  scrubs = mean_count(scrubs);
  repairs = mean_count(repairs);
}

void ForecastStats::accumulate(const ForecastStats& other) {
  forecasts += other.forecasts;
  abs_pct_error_sum += other.abs_pct_error_sum;
  interval_hits += other.interval_hits;
  changepoints += other.changepoints;
  burst_windows += other.burst_windows;
}

void ForecastStats::divide(int runs) {
  require(runs > 0, "ForecastStats::divide needs runs > 0");
  auto mean_count = [runs](std::int64_t v) {
    return static_cast<std::int64_t>(
        std::llround(static_cast<double>(v) / static_cast<double>(runs)));
  };
  forecasts = mean_count(forecasts);
  abs_pct_error_sum /= static_cast<double>(runs);
  interval_hits = mean_count(interval_hits);
  changepoints = mean_count(changepoints);
  burst_windows = mean_count(burst_windows);
}

void DetectionStats::accumulate(const DetectionStats& other) {
  frames_scored += other.frames_scored;
  objects_total += other.objects_total;
  candidates_total += other.candidates_total;
  suppressed_total += other.suppressed_total;
  nms_pairs_total += other.nms_pairs_total;
  true_positives += other.true_positives;
  false_positives += other.false_positives;
  missed_objects += other.missed_objects;
  postprocess_s += other.postprocess_s;
  map_proxy_sum += other.map_proxy_sum;
}

void DetectionStats::divide(int runs) {
  require(runs > 0, "DetectionStats::divide needs runs > 0");
  auto mean_count = [runs](std::int64_t v) {
    return static_cast<std::int64_t>(
        std::llround(static_cast<double>(v) / static_cast<double>(runs)));
  };
  frames_scored = mean_count(frames_scored);
  objects_total = mean_count(objects_total);
  candidates_total = mean_count(candidates_total);
  suppressed_total = mean_count(suppressed_total);
  nms_pairs_total = mean_count(nms_pairs_total);
  true_positives = mean_count(true_positives);
  false_positives = mean_count(false_positives);
  missed_objects = mean_count(missed_objects);
  postprocess_s /= static_cast<double>(runs);
  map_proxy_sum /= static_cast<double>(runs);
}

}  // namespace adaflow::sim
