#include "adaflow/sim/stats.hpp"

#include <cmath>

#include "adaflow/common/error.hpp"

namespace adaflow::sim {

void RunningStat::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::stddev() const {
  if (count_ < 2) {
    return 0.0;
  }
  return std::sqrt(m2_ / static_cast<double>(count_ - 1));
}

TimeSeries average_series(const std::vector<TimeSeries>& runs) {
  require(!runs.empty(), "no series to average");
  TimeSeries out;
  out.interval_s = runs.front().interval_s;
  std::size_t len = runs.front().values.size();
  for (const TimeSeries& r : runs) {
    len = std::min(len, r.values.size());
  }
  out.values.assign(len, 0.0);
  for (const TimeSeries& r : runs) {
    for (std::size_t i = 0; i < len; ++i) {
      out.values[i] += r.values[i];
    }
  }
  for (double& v : out.values) {
    v /= static_cast<double>(runs.size());
  }
  return out;
}

}  // namespace adaflow::sim
