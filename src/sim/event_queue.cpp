#include "adaflow/sim/event_queue.hpp"

namespace adaflow::sim {

void EventQueue::schedule_at(double when, EventFn fn) {
  require(when >= now_, "cannot schedule into the past");
  heap_.push(Entry{when, next_sequence_++, std::move(fn)});
}

void EventQueue::run_until(double t_end) {
  while (!heap_.empty() && heap_.top().when <= t_end) {
    // Copy out before pop: the callback may schedule new events.
    Entry e = heap_.top();
    heap_.pop();
    now_ = e.when;
    e.fn();
  }
  now_ = t_end;
}

}  // namespace adaflow::sim
