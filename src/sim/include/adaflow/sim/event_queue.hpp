#pragma once

/// \file event_queue.hpp
/// Minimal discrete-event simulation engine: a time-ordered queue of
/// callbacks with a monotonically advancing clock. Events scheduled at equal
/// times fire in insertion order (stable), which keeps runs deterministic.

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "adaflow/common/error.hpp"

namespace adaflow::sim {

using EventFn = std::function<void()>;

class EventQueue {
 public:
  double now() const { return now_; }

  /// Schedules \p fn at absolute time \p when (>= now).
  void schedule_at(double when, EventFn fn);

  /// Schedules \p fn \p delay seconds from now.
  void schedule_in(double delay, EventFn fn) { schedule_at(now_ + delay, std::move(fn)); }

  /// Runs events in time order until the queue empties or the clock would
  /// pass \p t_end; the clock finishes exactly at t_end.
  void run_until(double t_end);

  std::size_t pending() const { return heap_.size(); }

 private:
  struct Entry {
    double when;
    std::uint64_t sequence;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.sequence > b.sequence;
    }
  };

  double now_ = 0.0;
  std::uint64_t next_sequence_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
};

}  // namespace adaflow::sim
