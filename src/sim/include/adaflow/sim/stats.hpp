#pragma once

/// \file stats.hpp
/// Aggregation helpers for simulation outputs: running mean/stddev and
/// fixed-interval time series (the paper's per-interval frame-loss / QoE
/// curves).

#include <array>
#include <cstdint>
#include <vector>

namespace adaflow::sim {

/// Welford running mean and (sample) standard deviation.
class RunningStat {
 public:
  void add(double x);
  std::int64_t count() const { return count_; }
  double mean() const { return mean_; }
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// A sampled time series with a fixed sampling interval.
struct TimeSeries {
  double interval_s = 0.5;
  std::vector<double> values;

  double time_of(std::size_t i) const { return static_cast<double>(i + 1) * interval_s; }
};

/// Element-wise mean over runs. Series of unequal length (fleet runs of
/// differing durations) are truncated to the SHORTEST run before averaging,
/// so every output sample averages the same number of runs; if any series is
/// empty the result is empty. Throws on an empty input vector. The sampling
/// interval is taken from the first series.
TimeSeries average_series(const std::vector<TimeSeries>& runs);

/// Element-wise combination of per-window series from DISJOINT substreams of
/// the same run window (the sharded engine's metric reduction). All three
/// helpers share the merge contract of this file: an EMPTY series is the
/// identity (the other operand is returned unchanged, preserving its
/// interval), two non-empty series are truncated to the shorter one, and the
/// operations are associative — exactly for the integer-weighted cases the
/// determinism tests exercise, to rounding otherwise.
///
/// merge_sum_series: additive quantities (aggregate FPS, watts).
TimeSeries merge_sum_series(const TimeSeries& a, const TimeSeries& b);
/// merge_max_series: worst-of quantities (worst-device backlog).
TimeSeries merge_max_series(const TimeSeries& a, const TimeSeries& b);
/// merge_weighted_series: per-window fractions (loss, QoE) combined as the
/// weight-proportional mean (weight = that side's per-window arrivals, taken
/// from its workload series). Windows whose combined weight is zero keep 0.
/// \p wa / \p wb must be at least as long as the respective series.
TimeSeries merge_weighted_series(const TimeSeries& a, const std::vector<double>& wa,
                                 const TimeSeries& b, const std::vector<double>& wb);

/// Classical nearest-rank percentile of \p values (q in [0, 1]; q=0.95 ->
/// p95): the smallest element with at least ceil(q*N) elements <= it, i.e.
/// sorted[clamp(ceil(q*N) - 1, 0, N-1)]. No interpolation is performed — the
/// result is always one of the inputs. Exact small-N semantics follow from
/// the rule: N=1 returns the single element for every q; q=0 returns the
/// minimum; q=1 returns the maximum; and whenever N < 1/(1-q) (e.g. N < 1000
/// at q=0.999) the rank saturates at N, so the result is the maximum — the
/// only honest tail estimate a short run supports. Returns 0 for an empty
/// vector. The input is copied, not reordered.
double percentile(const std::vector<double>& values, double q);

/// Fixed-layout geometric latency histogram for end-to-end capture->result
/// percentiles. Bucket 0 covers [0, 100us); bucket i covers
/// [100us * g^(i-1), 100us * g^i) with g = 2^(1/8) (~9% relative width); the
/// last bucket is the overflow. The layout is compile-time constant, so two
/// runs that record the same latencies produce bit-identical bucket counts —
/// the replay-determinism contract extends to tail metrics. Unlike keeping
/// every sample, memory is O(1) regardless of run length.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 256;
  static constexpr double kMinSeconds = 1e-4;

  /// Records one latency sample (negative values clamp to 0).
  void record(double seconds);

  std::int64_t count() const { return count_; }
  double sum_s() const { return sum_s_; }
  double mean_s() const { return count_ > 0 ? sum_s_ / static_cast<double>(count_) : 0.0; }
  double min_s() const { return count_ > 0 ? min_s_ : 0.0; }
  double max_s() const { return max_s_; }

  /// Percentile estimate (q in [0, 1]). The target rank is the nearest-rank
  /// ceil(q*count); the estimate interpolates linearly inside the containing
  /// bucket (so the error is bounded by the ~9% bucket width), clamped into
  /// [min_s, max_s]. The overflow bucket reports the exact recorded maximum.
  /// Returns 0 when empty. Throws ConfigError on q outside [0, 1].
  double percentile(double q) const;

  /// Folds \p other into this histogram: bucket counts, count, and sum add;
  /// min/max combine. Because the bucket layout is compile-time constant the
  /// operation is exact on the integer state, so merge is associative and
  /// commutative there, and a default-constructed histogram is the identity
  /// — the contract the sharded engine's metric reduction relies on (sum_s
  /// is a double sum: associative to rounding, exact for the representable
  /// values the determinism tests use).
  void merge(const LatencyHistogram& other);

  /// True when the bucket counts (and count/min/max/sum) match exactly —
  /// the bit-identical-replay check for tail metrics.
  bool identical(const LatencyHistogram& other) const;

  const std::array<std::int64_t, kBuckets>& buckets() const { return buckets_; }

 private:
  std::array<std::int64_t, kBuckets> buckets_{};
  std::int64_t count_ = 0;
  double sum_s_ = 0.0;
  double min_s_ = 0.0;
  double max_s_ = 0.0;
};

/// Robustness counters of one simulated run: faults that manifested, how the
/// server reacted, and how long it spent off its policy-chosen operating
/// point. Injected counts come from the FaultInjector; reaction counts from
/// the Edge server's fault-tolerance machinery.
struct FaultStats {
  // Faults that manifested.
  std::int64_t reconfig_failures_injected = 0;
  std::int64_t reconfig_slowdowns_injected = 0;
  std::int64_t monitor_dropouts = 0;
  std::int64_t monitor_noise_events = 0;
  std::int64_t stalls_injected = 0;
  std::int64_t burst_windows = 0;
  // Whole-device fault windows that manifested (fleet resilience layer).
  std::int64_t device_crashes = 0;
  std::int64_t device_hangs = 0;
  std::int64_t degrade_windows = 0;
  // Ingest-path faults (network outage windows ahead of the dispatcher,
  // scheduled decode faults on top of the decoder's baseline failure rate).
  std::int64_t network_outage_drops = 0;
  std::int64_t decode_faults_injected = 0;

  // How the server reacted.
  std::int64_t switch_failures = 0;    ///< failed switch attempts observed
  std::int64_t switch_timeouts = 0;    ///< switches aborted by the timeout
  std::int64_t switch_retries = 0;     ///< backoff retries issued
  std::int64_t fallbacks = 0;          ///< policy-supplied fallback actions tried
  std::int64_t switches_abandoned = 0; ///< episodes given up (old mode kept)
  std::int64_t stalls_recovered = 0;   ///< frames dropped by the stall watchdog
  std::int64_t overload_sheds = 0;     ///< load-shedding switches applied

  // Degraded operation: time between a fault manifesting and full recovery.
  double time_degraded_s = 0.0;
  double recovery_time_sum_s = 0.0;
  std::int64_t recoveries = 0;

  std::int64_t total_injected() const {
    return reconfig_failures_injected + reconfig_slowdowns_injected + monitor_dropouts +
           monitor_noise_events + stalls_injected + burst_windows + device_crashes +
           device_hangs + degrade_windows + network_outage_drops + decode_faults_injected;
  }
  double degraded_fraction(double duration_s) const {
    return duration_s > 0.0 ? time_degraded_s / duration_s : 0.0;
  }
  double mean_time_to_recovery_s() const {
    return recoveries > 0 ? recovery_time_sum_s / static_cast<double>(recoveries) : 0.0;
  }

  void accumulate(const FaultStats& other);
  /// In-place mean over \p runs (counts rounded to nearest).
  void divide(int runs);
};

/// Silent-data-corruption observability of one simulated run (src/integrity):
/// configuration upsets that landed, frames delivered while the fabric was
/// corrupted (delivered != correct), the canary-probing tax, drift-detector
/// verdicts scored against ground truth, and the repair traffic. All-zero
/// when no kConfigUpset schedule and no integrity layer are armed.
struct IntegrityStats {
  // The fault side.
  std::int64_t upsets_injected = 0;  ///< config upsets that landed on the fabric
  std::int64_t wrong_frames = 0;     ///< frames delivered while corrupted
  double corrupt_time_s = 0.0;       ///< time served with a corrupted configuration
  // The detection side.
  std::int64_t canaries_sent = 0;    ///< golden frames injected through the queue
  std::int64_t canaries_failed = 0;  ///< canary outputs that mismatched golden
  std::int64_t detections = 0;       ///< detector trips with corruption present
  std::int64_t false_alarms = 0;     ///< detector trips on a clean fabric
  double detection_latency_sum_s = 0.0;  ///< upset landing -> detector trip
  // The repair side.
  std::int64_t scrubs = 0;   ///< blind periodic scrub reloads issued
  std::int64_t repairs = 0;  ///< reloads that actually cleared a corruption

  /// Fraction of delivered frames that were silently wrong.
  double wrong_fraction(std::int64_t processed) const {
    return processed > 0 ? static_cast<double>(wrong_frames) / static_cast<double>(processed)
                         : 0.0;
  }
  /// Throughput tax of the probing: canaries per served (real) frame.
  double canary_overhead(std::int64_t processed) const {
    return processed > 0 ? static_cast<double>(canaries_sent) / static_cast<double>(processed)
                         : 0.0;
  }
  /// Mean upset-landing -> detector-trip latency (0 when nothing detected).
  double mean_detection_latency_s() const {
    return detections > 0 ? detection_latency_sum_s / static_cast<double>(detections) : 0.0;
  }

  void accumulate(const IntegrityStats& other);
  /// In-place mean over \p runs (counts rounded to nearest).
  void divide(int runs);
};

/// Forecast quality of one simulated run: how well the workload forecaster
/// predicted the per-window arrival rate `horizon` windows ahead. Filled by
/// the forecast tracker inside proactive serving policies; all-zero for
/// reactive runs.
struct ForecastStats {
  std::int64_t forecasts = 0;        ///< scored horizon-ahead forecasts
  double abs_pct_error_sum = 0.0;    ///< sum of |actual-pred| / max(actual, 1)
  std::int64_t interval_hits = 0;    ///< actual fell inside [lower, upper]
  std::int64_t changepoints = 0;     ///< changepoint-detector triggers
  std::int64_t burst_windows = 0;    ///< windows spent in burst regime

  /// Mean absolute percentage error of the point forecasts (0 when none).
  double mape() const {
    return forecasts > 0 ? abs_pct_error_sum / static_cast<double>(forecasts) : 0.0;
  }
  /// Fraction of actuals inside the prediction interval (0 when none).
  double coverage() const {
    return forecasts > 0 ? static_cast<double>(interval_hits) / static_cast<double>(forecasts)
                         : 0.0;
  }

  void accumulate(const ForecastStats& other);
  /// In-place mean over \p runs (counts rounded to nearest).
  void divide(int runs);
};

/// Observability for detection workloads (src/detect): per-frame outcomes of
/// the YOLO-style head + seeded NMS postprocess, scored when a frame enters
/// service. All-zero for classification runs. The per-frame mAP proxy also
/// feeds RunMetrics::qoe_accuracy_sum, so qoe() is the detection QoE
/// (mAP proxy x processed-frame fraction) on these runs.
struct DetectionStats {
  std::int64_t frames_scored = 0;    ///< processed frames that ran the head
  std::int64_t objects_total = 0;    ///< ground-truth objects in scored frames
  std::int64_t candidates_total = 0; ///< raw proposals entering NMS
  std::int64_t suppressed_total = 0; ///< proposals NMS removed
  std::int64_t nms_pairs_total = 0;  ///< IoU pairs compared (the O(n^2) cost)
  std::int64_t true_positives = 0;
  std::int64_t false_positives = 0;
  std::int64_t missed_objects = 0;
  double postprocess_s = 0.0;   ///< summed NMS/decode service seconds
  double map_proxy_sum = 0.0;   ///< summed per-frame mAP proxy

  double mean_map_proxy() const {
    return frames_scored > 0 ? map_proxy_sum / static_cast<double>(frames_scored) : 0.0;
  }
  double precision() const {
    const std::int64_t detections = true_positives + false_positives;
    return detections > 0 ? static_cast<double>(true_positives) /
                                static_cast<double>(detections)
                          : 0.0;
  }
  double recall() const {
    return objects_total > 0 ? static_cast<double>(true_positives) /
                                   static_cast<double>(objects_total)
                             : 0.0;
  }

  void accumulate(const DetectionStats& other);
  /// In-place mean over \p runs (counts rounded to nearest).
  void divide(int runs);
};

}  // namespace adaflow::sim
