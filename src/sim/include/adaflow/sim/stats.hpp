#pragma once

/// \file stats.hpp
/// Aggregation helpers for simulation outputs: running mean/stddev and
/// fixed-interval time series (the paper's per-interval frame-loss / QoE
/// curves).

#include <cstdint>
#include <vector>

namespace adaflow::sim {

/// Welford running mean and (sample) standard deviation.
class RunningStat {
 public:
  void add(double x);
  std::int64_t count() const { return count_; }
  double mean() const { return mean_; }
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// A sampled time series with a fixed sampling interval.
struct TimeSeries {
  double interval_s = 0.5;
  std::vector<double> values;

  double time_of(std::size_t i) const { return static_cast<double>(i + 1) * interval_s; }
};

/// Element-wise mean over runs. Series of unequal length (fleet runs of
/// differing durations) are truncated to the SHORTEST run before averaging,
/// so every output sample averages the same number of runs; if any series is
/// empty the result is empty. Throws on an empty input vector. The sampling
/// interval is taken from the first series.
TimeSeries average_series(const std::vector<TimeSeries>& runs);

/// Nearest-rank percentile of \p values (q in [0, 1]; q=0.95 -> p95).
/// Returns 0 for an empty vector. The input is copied, not reordered.
double percentile(const std::vector<double>& values, double q);

/// Robustness counters of one simulated run: faults that manifested, how the
/// server reacted, and how long it spent off its policy-chosen operating
/// point. Injected counts come from the FaultInjector; reaction counts from
/// the Edge server's fault-tolerance machinery.
struct FaultStats {
  // Faults that manifested.
  std::int64_t reconfig_failures_injected = 0;
  std::int64_t reconfig_slowdowns_injected = 0;
  std::int64_t monitor_dropouts = 0;
  std::int64_t monitor_noise_events = 0;
  std::int64_t stalls_injected = 0;
  std::int64_t burst_windows = 0;
  // Whole-device fault windows that manifested (fleet resilience layer).
  std::int64_t device_crashes = 0;
  std::int64_t device_hangs = 0;
  std::int64_t degrade_windows = 0;

  // How the server reacted.
  std::int64_t switch_failures = 0;    ///< failed switch attempts observed
  std::int64_t switch_timeouts = 0;    ///< switches aborted by the timeout
  std::int64_t switch_retries = 0;     ///< backoff retries issued
  std::int64_t fallbacks = 0;          ///< policy-supplied fallback actions tried
  std::int64_t switches_abandoned = 0; ///< episodes given up (old mode kept)
  std::int64_t stalls_recovered = 0;   ///< frames dropped by the stall watchdog
  std::int64_t overload_sheds = 0;     ///< load-shedding switches applied

  // Degraded operation: time between a fault manifesting and full recovery.
  double time_degraded_s = 0.0;
  double recovery_time_sum_s = 0.0;
  std::int64_t recoveries = 0;

  std::int64_t total_injected() const {
    return reconfig_failures_injected + reconfig_slowdowns_injected + monitor_dropouts +
           monitor_noise_events + stalls_injected + burst_windows + device_crashes +
           device_hangs + degrade_windows;
  }
  double degraded_fraction(double duration_s) const {
    return duration_s > 0.0 ? time_degraded_s / duration_s : 0.0;
  }
  double mean_time_to_recovery_s() const {
    return recoveries > 0 ? recovery_time_sum_s / static_cast<double>(recoveries) : 0.0;
  }

  void accumulate(const FaultStats& other);
  /// In-place mean over \p runs (counts rounded to nearest).
  void divide(int runs);
};

/// Forecast quality of one simulated run: how well the workload forecaster
/// predicted the per-window arrival rate `horizon` windows ahead. Filled by
/// the forecast tracker inside proactive serving policies; all-zero for
/// reactive runs.
struct ForecastStats {
  std::int64_t forecasts = 0;        ///< scored horizon-ahead forecasts
  double abs_pct_error_sum = 0.0;    ///< sum of |actual-pred| / max(actual, 1)
  std::int64_t interval_hits = 0;    ///< actual fell inside [lower, upper]
  std::int64_t changepoints = 0;     ///< changepoint-detector triggers
  std::int64_t burst_windows = 0;    ///< windows spent in burst regime

  /// Mean absolute percentage error of the point forecasts (0 when none).
  double mape() const {
    return forecasts > 0 ? abs_pct_error_sum / static_cast<double>(forecasts) : 0.0;
  }
  /// Fraction of actuals inside the prediction interval (0 when none).
  double coverage() const {
    return forecasts > 0 ? static_cast<double>(interval_hits) / static_cast<double>(forecasts)
                         : 0.0;
  }

  void accumulate(const ForecastStats& other);
  /// In-place mean over \p runs (counts rounded to nearest).
  void divide(int runs);
};

}  // namespace adaflow::sim
