#pragma once

/// \file stats.hpp
/// Aggregation helpers for simulation outputs: running mean/stddev and
/// fixed-interval time series (the paper's per-interval frame-loss / QoE
/// curves).

#include <cstdint>
#include <vector>

namespace adaflow::sim {

/// Welford running mean and (sample) standard deviation.
class RunningStat {
 public:
  void add(double x);
  std::int64_t count() const { return count_; }
  double mean() const { return mean_; }
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// A sampled time series with a fixed sampling interval.
struct TimeSeries {
  double interval_s = 0.5;
  std::vector<double> values;

  double time_of(std::size_t i) const { return static_cast<double>(i + 1) * interval_s; }
};

/// Element-wise mean of equally shaped series (averaging the 100 runs).
TimeSeries average_series(const std::vector<TimeSeries>& runs);

}  // namespace adaflow::sim
