#include "adaflow/ingest/session.hpp"

#include <algorithm>
#include <cmath>

#include "adaflow/common/error.hpp"

namespace adaflow::ingest {

const char* session_state_name(SessionState state) {
  switch (state) {
    case SessionState::kConnecting:
      return "connecting";
    case SessionState::kActive:
      return "active";
    case SessionState::kBackoff:
      return "backoff";
  }
  return "unknown";
}

CameraSession::CameraSession(sim::EventQueue& queue, const CameraSessionConfig& config,
                             std::uint64_t seed, double horizon_s, std::string name)
    : queue_(queue), config_(config), rng_(seed), horizon_s_(horizon_s),
      name_(std::move(name)) {
  require(std::isfinite(config_.fps) && config_.fps > 0.0,
          "camera session '" + name_ + "': fps must be positive");
  require(std::isfinite(config_.connect_delay_s) && config_.connect_delay_s >= 0.0,
          "camera session '" + name_ + "': connect_delay_s must be >= 0");
  require(std::isfinite(config_.mean_uptime_s),
          "camera session '" + name_ + "': mean_uptime_s must be finite");
  require(std::isfinite(config_.reconnect_backoff_s) && config_.reconnect_backoff_s > 0.0,
          "camera session '" + name_ + "': reconnect_backoff_s must be positive");
  require(config_.reconnect_backoff_max_s >= config_.reconnect_backoff_s,
          "camera session '" + name_ + "': reconnect_backoff_max_s must be >= backoff base");
  require(config_.reconnect_success_p > 0.0 && config_.reconnect_success_p <= 1.0,
          "camera session '" + name_ + "': reconnect_success_p must be in (0, 1]");
  require(horizon_s_ > 0.0, "camera session '" + name_ + "': horizon_s must be positive");
}

void CameraSession::start() { begin_connect(); }

void CameraSession::begin_connect() {
  state_ = SessionState::kConnecting;
  const double when = queue_.now() + config_.connect_delay_s;
  if (when <= horizon_s_) {
    queue_.schedule_at(when, [this] { on_connected(); });
  }
}

void CameraSession::on_connected() {
  state_ = SessionState::kActive;
  ++stats_.connects;
  backoff_attempt_ = 0;
  const std::uint64_t epoch = epoch_;
  // A churn-free session (mean_uptime_s <= 0) draws no uptime at all — it
  // must not consume entropy it does not use.
  if (config_.mean_uptime_s > 0.0) {
    const double uptime = rng_.exponential(1.0 / config_.mean_uptime_s);
    const double drop_at = queue_.now() + uptime;
    if (drop_at <= horizon_s_) {
      queue_.schedule_at(drop_at, [this, epoch] {
        if (epoch == epoch_) {
          on_disconnected();
        }
      });
    }
  }
  const double first_frame = queue_.now() + 1.0 / config_.fps;
  if (first_frame <= horizon_s_) {
    queue_.schedule_at(first_frame, [this, epoch] { frame_tick(epoch); });
  }
}

void CameraSession::frame_tick(std::uint64_t epoch) {
  if (epoch != epoch_ || state_ != SessionState::kActive) {
    return;  // the connection this tick belonged to is gone
  }
  const std::int64_t seq = next_seq_++;
  ++stats_.frames_captured;
  if (on_frame_) {
    on_frame_(seq, queue_.now());
  }
  const double next = queue_.now() + 1.0 / config_.fps;
  if (next <= horizon_s_) {
    queue_.schedule_at(next, [this, epoch] { frame_tick(epoch); });
  }
}

void CameraSession::on_disconnected() {
  ++epoch_;  // cancels the frame cadence of the dead connection
  state_ = SessionState::kBackoff;
  ++stats_.disconnects;
  backoff_attempt_ = 0;
  schedule_reconnect();
}

void CameraSession::schedule_reconnect() {
  // Exponential backoff with a cap: base * 2^attempt. The jitter factor
  // de-synchronizes cameras that dropped together (a rack-level outage must
  // not produce a thundering-herd reconnect).
  const double uncapped =
      config_.reconnect_backoff_s * std::pow(2.0, static_cast<double>(backoff_attempt_));
  const double delay =
      std::min(uncapped, config_.reconnect_backoff_max_s) * rng_.uniform(0.8, 1.2);
  const double when = queue_.now() + delay;
  if (when > horizon_s_) {
    return;  // the run ends before the next attempt
  }
  queue_.schedule_at(when, [this] {
    ++stats_.reconnect_attempts;
    if (rng_.bernoulli(config_.reconnect_success_p)) {
      begin_connect();
      return;
    }
    ++backoff_attempt_;
    schedule_reconnect();
  });
}

}  // namespace adaflow::ingest
