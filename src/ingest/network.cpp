#include "adaflow/ingest/network.hpp"

#include <cmath>

#include "adaflow/common/error.hpp"
#include "adaflow/faults/fault_injector.hpp"

namespace adaflow::ingest {

namespace {
void require_probability(double p, const char* what) {
  require(std::isfinite(p) && p >= 0.0 && p <= 1.0,
          std::string("network config: ") + what + " must be in [0, 1]");
}
}  // namespace

NetworkLink::NetworkLink(sim::EventQueue& queue, const NetworkConfig& config, std::uint64_t seed,
                         faults::FaultInjector* injector)
    : queue_(queue), config_(config), rng_(seed), injector_(injector) {
  require(std::isfinite(config_.base_delay_s) && config_.base_delay_s >= 0.0,
          "network config: base_delay_s must be >= 0");
  require(std::isfinite(config_.jitter_s) && config_.jitter_s >= 0.0,
          "network config: jitter_s must be >= 0");
  require(std::isfinite(config_.duplicate_extra_delay_s) && config_.duplicate_extra_delay_s >= 0.0,
          "network config: duplicate_extra_delay_s must be >= 0");
  require_probability(config_.loss_p, "loss_p");
  require_probability(config_.burst_loss_p, "burst_loss_p");
  require_probability(config_.p_good_to_bad, "p_good_to_bad");
  require_probability(config_.p_bad_to_good, "p_bad_to_good");
  require_probability(config_.duplicate_p, "duplicate_p");
}

void NetworkLink::transmit(std::int64_t seq, double capture_s) {
  ++stats_.transmitted;
  // Fixed draw order per frame — state transition, loss, jitter, duplicate —
  // so the link's stream is a pure function of (config, seed, frame count).
  if (bad_state_) {
    if (config_.p_bad_to_good > 0.0 && rng_.bernoulli(config_.p_bad_to_good)) {
      bad_state_ = false;
    }
  } else if (config_.p_good_to_bad > 0.0 && rng_.bernoulli(config_.p_good_to_bad)) {
    bad_state_ = true;
  }
  if (injector_ != nullptr && injector_->network_drop(queue_.now())) {
    ++stats_.lost_outage;
    return;
  }
  const double loss_p = bad_state_ ? config_.burst_loss_p : config_.loss_p;
  if (loss_p > 0.0 && rng_.bernoulli(loss_p)) {
    if (bad_state_) {
      ++stats_.lost_burst;
    } else {
      ++stats_.lost_iid;
    }
    return;
  }
  const double jitter = config_.jitter_s > 0.0 ? rng_.uniform(0.0, config_.jitter_s) : 0.0;
  deliver(seq, capture_s, config_.base_delay_s + jitter);
  if (config_.duplicate_p > 0.0 && rng_.bernoulli(config_.duplicate_p)) {
    ++stats_.duplicates;
    const double extra = config_.jitter_s > 0.0 ? rng_.uniform(0.0, config_.jitter_s) : 0.0;
    deliver(seq, capture_s, config_.base_delay_s + config_.duplicate_extra_delay_s + extra);
  }
}

void NetworkLink::deliver(std::int64_t seq, double capture_s, double delay_s) {
  queue_.schedule_in(delay_s, [this, seq, capture_s] {
    ++stats_.delivered;
    if (on_deliver_) {
      on_deliver_(seq, capture_s);
    }
  });
}

}  // namespace adaflow::ingest
