#pragma once

/// \file session.hpp
/// One camera's connection lifecycle as a discrete-event component.
///
/// A CameraSession models the part of the serving path the cluster does not
/// control: the camera itself. While connected it captures frames at a fixed
/// cadence; connections die after an exponentially-distributed uptime and
/// come back through an exponential-backoff reconnect loop whose attempts
/// succeed only probabilistically (a flapping camera may need several).
/// Every probabilistic decision draws from the session's own seeded Rng, so
/// a (config, seed) pair replays its churn bit-identically regardless of
/// what the rest of the pipeline does.
///
/// State machine:  kConnecting --connect_delay--> kActive
///                 kActive --uptime expires--> kBackoff (frames stop)
///                 kBackoff --backoff, attempt fails--> kBackoff (doubled)
///                 kBackoff --attempt succeeds--> kConnecting
/// Frame sequence numbers increase monotonically across reconnects, which is
/// what lets the downstream stale filter reason about ordering.

#include <cstdint>
#include <functional>
#include <string>

#include "adaflow/common/rng.hpp"
#include "adaflow/sim/event_queue.hpp"

namespace adaflow::ingest {

struct CameraSessionConfig {
  double fps = 30.0;              ///< capture cadence while connected
  double connect_delay_s = 0.2;   ///< handshake time per (re)connect
  /// Mean connected time before the session drops (exponential); <= 0 means
  /// the session never drops on its own.
  double mean_uptime_s = 30.0;
  double reconnect_backoff_s = 0.5;      ///< first retry delay
  double reconnect_backoff_max_s = 8.0;  ///< cap for the doubling backoff
  double reconnect_success_p = 0.7;      ///< per-attempt success probability
};

struct CameraSessionStats {
  std::int64_t connects = 0;            ///< completed handshakes
  std::int64_t disconnects = 0;         ///< uptime expiries
  std::int64_t reconnect_attempts = 0;  ///< backoff attempts (incl. successes)
  std::int64_t frames_captured = 0;
};

enum class SessionState { kConnecting, kActive, kBackoff };

const char* session_state_name(SessionState state);

class CameraSession {
 public:
  /// \p queue outlives the session; events are never scheduled past
  /// \p horizon_s. Throws ConfigError on an invalid config.
  CameraSession(sim::EventQueue& queue, const CameraSessionConfig& config, std::uint64_t seed,
                double horizon_s, std::string name = "cam");

  /// Invoked at capture time for every frame (seq is monotone across
  /// reconnects). Set before start().
  void set_on_frame(std::function<void(std::int64_t seq, double capture_s)> fn) {
    on_frame_ = std::move(fn);
  }

  /// Begins the first connect at queue.now(). Call once.
  void start();

  SessionState state() const { return state_; }
  const std::string& name() const { return name_; }
  const CameraSessionStats& stats() const { return stats_; }

 private:
  void begin_connect();
  void on_connected();
  void frame_tick(std::uint64_t epoch);
  void on_disconnected();
  void schedule_reconnect();

  sim::EventQueue& queue_;
  CameraSessionConfig config_;
  Rng rng_;
  double horizon_s_;
  std::string name_;

  SessionState state_ = SessionState::kConnecting;
  /// Bumped on every disconnect so in-flight frame/disconnect events from
  /// the previous connection no-op instead of firing into the new one.
  std::uint64_t epoch_ = 0;
  int backoff_attempt_ = 0;
  std::int64_t next_seq_ = 0;
  CameraSessionStats stats_;
  std::function<void(std::int64_t, double)> on_frame_;
};

}  // namespace adaflow::ingest
