#pragma once

/// \file brownout.hpp
/// Graceful-degradation (brownout) control for the ingest pipeline.
///
/// When sustained demand exceeds what the fleet can serve, dropping frames
/// arbitrarily (queue overflow) both wastes the work already spent on them
/// and lets end-to-end latency grow without bound. The brownout controller
/// sheds load deliberately instead, climbing a three-tier ladder:
///
///   tier 0  full quality     — every admitted frame served at full accuracy
///   tier 1  frame thinning   — keep every k-th frame per session (the rest
///                              are dropped at admission, cheap and early)
///   tier 2  accuracy variant — downgrade the fleet's devices to a faster,
///                              lower-accuracy library version through the
///                              existing reconfiguration path; thinning is
///                              lifted, because the downgraded fleet has the
///                              capacity to serve every frame (keeping it
///                              would discard frames the fleet could deliver)
///
/// Decisions are driven by two signals sampled at a fixed cadence: queue
/// fill (the worst of session queues, fleet ingress, device queues) and the
/// recent end-to-end p99 latency. Tiers engage as soon as a signal crosses
/// its threshold but release only after BOTH signals drop below
/// release_fraction x the engage threshold AND a minimum dwell has passed —
/// classic hysteresis, so the ladder does not flap around a threshold.
///
/// The controller itself is pure decision logic (no event queue, no fleet
/// handle): the ingest pipeline feeds it signals and applies its verdicts.
/// Two degenerate modes exist for baselines: kOff never engages, and
/// kDropAll sheds EVERYTHING while engaged (the on/off admission control a
/// brownout ladder should beat).

#include <cstdint>

namespace adaflow::ingest {

enum class BrownoutMode {
  kOff,      ///< baseline: never degrade, let queues overflow
  kLadder,   ///< the three-tier graceful-degradation ladder
  kDropAll,  ///< baseline: binary admission control (all or nothing)
};

const char* brownout_mode_name(BrownoutMode mode);

struct BrownoutConfig {
  BrownoutMode mode = BrownoutMode::kLadder;
  double poll_interval_s = 0.1;  ///< signal sampling cadence (set by the pipeline)
  // Engage thresholds. A tier engages when EITHER signal crosses its line.
  double tier1_fill = 0.5;       ///< queue-fill fraction that engages thinning
  double tier2_fill = 0.85;      ///< fill that additionally engages downgrade
  double tier1_latency_s = 0.3;  ///< e2e p99 that engages thinning
  double tier2_latency_s = 0.6;  ///< e2e p99 that additionally engages downgrade
  /// Release when both signals fall below release_fraction x the engage
  /// threshold of the CURRENT tier (strictly below 1 for real hysteresis).
  double release_fraction = 0.6;
  double min_dwell_s = 1.0;      ///< minimum time between tier changes
  /// Tier 1 keeps every keep_every-th frame of each session (2 = halve).
  int thin_keep_every = 2;
  /// Tier 2 moves devices this many library versions toward the fast end.
  int downgrade_steps = 1;
  /// Window over which the e2e p99 signal is computed.
  double latency_window_s = 1.0;

  /// Throws ConfigError naming the offending field.
  void validate() const;
};

struct BrownoutStats {
  std::int64_t tier1_engagements = 0;  ///< entries into tier >= 1 (or drop-all)
  std::int64_t tier2_engagements = 0;  ///< entries into tier 2
  double time_tier1_s = 0.0;           ///< time spent at tier 1 (thinning only)
  double time_tier2_s = 0.0;           ///< time spent at tier 2 (downgraded)
  double time_shedding_s = 0.0;        ///< kDropAll: time spent shedding all
};

class BrownoutController {
 public:
  /// What the pipeline should do right now.
  struct Decision {
    bool thin = false;       ///< admission: keep only every k-th frame
    bool downgrade = false;  ///< devices should run the downgraded version
    bool drop_all = false;   ///< admission: shed every frame (kDropAll mode)
  };

  explicit BrownoutController(const BrownoutConfig& config);

  /// One controller tick at \p now_s with the current queue-fill fraction
  /// (0..1, worst queue) and the recent end-to-end p99 [s]. Monotone time
  /// required. Returns the (possibly unchanged) decision.
  Decision update(double now_s, double fill_fraction, double e2e_p99_s);

  /// Current tier (0..2; in kDropAll mode 1 means "shedding").
  int tier() const { return tier_; }
  Decision decision() const;

  /// Closes the open tier episode at \p t_end for the time accounting.
  void finalize(double t_end_s);

  const BrownoutStats& stats() const { return stats_; }

 private:
  int desired_tier(double fill, double latency_s) const;
  bool below_release(double fill, double latency_s, int tier) const;
  void account_time(double now_s);

  BrownoutConfig config_;
  int tier_ = 0;
  double last_change_s_ = 0.0;
  double last_update_s_ = 0.0;
  BrownoutStats stats_;
};

}  // namespace adaflow::ingest
