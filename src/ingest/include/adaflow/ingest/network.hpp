#pragma once

/// \file network.hpp
/// The camera->cluster network path: propagation delay with seeded jitter,
/// i.i.d. and bursty (Gilbert-Elliott) loss, occasional duplicate delivery,
/// plus scheduled outage windows via the shared FaultInjector. Jitter makes
/// reordering emerge naturally — a frame delayed past its successor arrives
/// late, and the StaleFilter at the receiving end decides its fate.
///
/// One NetworkLink per camera session, each with its own seeded Rng stream,
/// so per-link behaviour replays bit-identically and adding a camera never
/// perturbs the others' draws.

#include <cstdint>
#include <functional>

#include "adaflow/common/rng.hpp"
#include "adaflow/sim/event_queue.hpp"

namespace adaflow::faults {
class FaultInjector;
}

namespace adaflow::ingest {

struct NetworkConfig {
  double base_delay_s = 0.02;   ///< fixed propagation delay
  double jitter_s = 0.01;       ///< extra uniform [0, jitter_s) per frame
  double loss_p = 0.01;         ///< i.i.d. loss in the good state
  double burst_loss_p = 0.5;    ///< loss while the link is in its bad state
  double p_good_to_bad = 0.005; ///< per-frame transition into the burst state
  double p_bad_to_good = 0.2;   ///< per-frame recovery out of it
  double duplicate_p = 0.002;   ///< a second copy is delivered late
  double duplicate_extra_delay_s = 0.03;
};

struct NetworkStats {
  std::int64_t transmitted = 0;   ///< frames handed to the link (capture side)
  std::int64_t duplicates = 0;    ///< extra copies the link created
  std::int64_t lost_iid = 0;      ///< good-state random drops
  std::int64_t lost_burst = 0;    ///< bad-state (burst) drops
  std::int64_t lost_outage = 0;   ///< scheduled kNetworkOutage drops
  std::int64_t delivered = 0;     ///< copies that reached the receiver
  std::int64_t lost() const { return lost_iid + lost_burst + lost_outage; }
  /// Copies still in flight right now (the conservation term at run end).
  std::int64_t in_flight() const { return transmitted + duplicates - lost() - delivered; }
};

class NetworkLink {
 public:
  /// \p queue outlives the link; \p injector may be null (no scheduled
  /// outages). Throws ConfigError on an invalid config.
  NetworkLink(sim::EventQueue& queue, const NetworkConfig& config, std::uint64_t seed,
              faults::FaultInjector* injector = nullptr);

  /// Invoked at delivery time for every surviving copy. Set before use.
  void set_on_deliver(std::function<void(std::int64_t seq, double capture_s)> fn) {
    on_deliver_ = std::move(fn);
  }

  /// One frame enters the link at queue.now() (= its capture time).
  void transmit(std::int64_t seq, double capture_s);

  bool in_burst_state() const { return bad_state_; }
  const NetworkStats& stats() const { return stats_; }

 private:
  void deliver(std::int64_t seq, double capture_s, double delay_s);

  sim::EventQueue& queue_;
  NetworkConfig config_;
  Rng rng_;
  faults::FaultInjector* injector_;
  bool bad_state_ = false;
  NetworkStats stats_;
  std::function<void(std::int64_t, double)> on_deliver_;
};

/// Receiver-side ordering guard: sequence numbers are monotone at capture,
/// so any frame at or below the highest already-accepted seq is either a
/// duplicate or arrived after a newer frame was already admitted — both are
/// worthless to a live CNN pipeline and are dropped on the spot
/// (drop-on-stale). Arrival-order inversions are counted whether or not the
/// frame survives.
class StaleFilter {
 public:
  struct Stats {
    std::int64_t arrived = 0;
    std::int64_t accepted = 0;
    std::int64_t dropped_stale = 0;  ///< duplicates + late frames
    std::int64_t reordered = 0;      ///< arrivals with seq below the previous arrival
  };

  /// True when the frame should continue down the pipeline.
  bool admit(std::int64_t seq) {
    ++stats_.arrived;
    if (last_arrived_seq_ >= 0 && seq < last_arrived_seq_) {
      ++stats_.reordered;
    }
    last_arrived_seq_ = seq;
    if (seq <= max_accepted_seq_) {
      ++stats_.dropped_stale;
      return false;
    }
    max_accepted_seq_ = seq;
    ++stats_.accepted;
    return true;
  }

  const Stats& stats() const { return stats_; }

 private:
  std::int64_t max_accepted_seq_ = -1;
  std::int64_t last_arrived_seq_ = -1;
  Stats stats_;
};

}  // namespace adaflow::ingest
