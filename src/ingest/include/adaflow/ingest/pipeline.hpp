#pragma once

/// \file pipeline.hpp
/// The end-to-end ingest pipeline: camera sessions -> network links -> stale
/// filter -> brownout admission -> bounded per-session queues -> decode
/// workers -> FleetEngine dispatcher -> devices.
///
/// This is the layer the paper's serving stack sits behind in a real
/// deployment: frames are not a Poisson process at the dispatcher, they are
/// captured by flapping cameras, cross a lossy reordering network, survive a
/// decode stage, and only then reach the fleet. Every frame is tagged at
/// decode, so the reported latency is the true capture->result time —
/// including network, queueing, decode, dispatch, hedges, and service.
///
/// Backpressure is explicit at every stage: the per-session ingest queues
/// are bounded (overflow drops the arriving frame), the decode workers pause
/// when the fleet's ingress backlog crosses a threshold (frames then wait in
/// the session queues instead of piling into the dispatcher), and the
/// brownout controller sheds load deliberately before queues overflow
/// arbitrarily (see brownout.hpp).
///
/// Determinism: sessions, links, and the decoder each own a seeded Rng
/// stream derived from the run seed with distinct salts, so one (config,
/// seed) pair replays bit-identically — including the latency histogram's
/// bucket counts.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "adaflow/fleet/engine.hpp"
#include "adaflow/ingest/brownout.hpp"
#include "adaflow/ingest/network.hpp"
#include "adaflow/ingest/session.hpp"

namespace adaflow::ingest {

struct DecodeConfig {
  double cost_s = 0.002;    ///< decode service time per frame
  int workers = 2;          ///< parallel decode slots (shared by all sessions)
  double fail_p = 0.0005;   ///< baseline corrupt-frame probability
  std::int64_t session_queue_capacity = 32;  ///< bounded pre-decode queue per session
  /// Decode pauses while the fleet's ingress backlog is at or past this
  /// (explicit backpressure: frames wait upstream, in the session queues).
  std::int64_t backpressure_threshold = 64;
  double retry_interval_s = 0.005;  ///< backpressure re-check cadence
};

struct IngestConfig {
  int cameras = 4;
  double duration_s = 30.0;
  CameraSessionConfig camera;  ///< shared by every session (per-session Rng differs)
  NetworkConfig network;
  DecodeConfig decode;
  BrownoutConfig brownout;
  fleet::FleetConfig fleet;
  /// Scheduled ingest-path faults (kNetworkOutage / kDecodeFault windows),
  /// drawn from one injector shared by all links and the decoder.
  std::optional<faults::FaultSchedule> faults;

  /// Throws ConfigError naming the offending field. (Camera and network
  /// fields are validated again by their components at construction.)
  void validate() const;
};

struct IngestSessionResult {
  std::string name;
  SessionState final_state = SessionState::kConnecting;
  CameraSessionStats session;
  NetworkStats network;
  StaleFilter::Stats filter;
  std::int64_t queue_drops = 0;    ///< session-queue overflow drops
  std::int64_t queued_at_end = 0;  ///< frames waiting for decode at t_end
};

/// Everything that happened to the frames, stage by stage. Flow conservation
/// holds exactly (checked by tests and bench_ingest):
///   captured + duplicates ==
///     network_lost + stale_dropped + thinned + dropall_shed + queue_drops
///     + decode_failed + fleet_shed + delivered + lost_in_fleet
///     + network_in_flight + session_queued + decode_in_flight + fleet_backlog
/// (the last four are the frames still alive when the clock stopped).
struct IngestMetrics {
  double duration_s = 0.0;

  // Capture and network.
  std::int64_t captured = 0;            ///< frames produced by the cameras
  std::int64_t duplicates = 0;          ///< extra copies the network created
  std::int64_t network_lost = 0;        ///< iid + burst + outage drops
  std::int64_t network_in_flight = 0;   ///< copies still on the wire at t_end

  // Receiver side.
  std::int64_t stale_dropped = 0;       ///< duplicates + late frames (filter)
  std::int64_t reordered = 0;           ///< arrival-order inversions observed
  std::int64_t thinned = 0;             ///< tier-1 admission drops
  std::int64_t dropall_shed = 0;        ///< kDropAll admission drops
  std::int64_t queue_drops = 0;         ///< session-queue overflow drops
  std::int64_t session_queued = 0;      ///< waiting for decode at t_end

  // Decode.
  std::int64_t decode_started = 0;
  std::int64_t decode_failed = 0;       ///< baseline + injected decode faults
  std::int64_t decode_in_flight = 0;    ///< mid-decode at t_end

  // Fleet.
  std::int64_t offered_to_fleet = 0;    ///< decode successes handed to the dispatcher
  std::int64_t fleet_shed = 0;          ///< bounced off a full fleet ingress
  std::int64_t delivered = 0;           ///< produced a result
  std::int64_t lost_in_fleet = 0;       ///< destroyed inside a device / redispatch shed
  std::int64_t fleet_backlog = 0;       ///< inside the fleet (ingress/queues) at t_end

  /// Delivered frames whose accuracy fell below the fleet's nominal
  /// operating point — tier-2 downgrades and device degrade windows.
  std::int64_t degraded_delivered = 0;

  double qoe_accuracy_sum = 0.0;

  /// True end-to-end capture->result latency of delivered frames.
  sim::LatencyHistogram e2e_latency;

  BrownoutStats brownout;
  int final_tier = 0;

  /// Ingest-path injector counters (network outages, scheduled decode
  /// faults); device-level faults live in fleet.faults.
  sim::FaultStats faults;

  fleet::FleetMetrics fleet;
  std::vector<IngestSessionResult> sessions;

  double delivered_fraction() const {
    return captured > 0 ? static_cast<double>(delivered) / static_cast<double>(captured) : 0.0;
  }
  /// QoE = summed delivered accuracy / captured frames — accuracy times
  /// delivered-frame fraction, charged for every frame the cameras produced.
  double qoe() const {
    return captured > 0 ? qoe_accuracy_sum / static_cast<double>(captured) : 0.0;
  }
  double degraded_fraction() const {
    return delivered > 0
               ? static_cast<double>(degraded_delivered) / static_cast<double>(delivered)
               : 0.0;
  }
  /// Left side minus right side of the conservation identity (0 when exact).
  std::int64_t conservation_error() const {
    return (captured + duplicates) -
           (network_lost + stale_dropped + thinned + dropall_shed + queue_drops +
            decode_failed + fleet_shed + delivered + lost_in_fleet + network_in_flight +
            session_queued + decode_in_flight + fleet_backlog);
  }
};

/// Runs the full ingest pipeline over a fresh FleetEngine. \p library is the
/// fleet's default library; \p seed derives every component stream — the
/// same (config, seed) pair replays bit-identically.
IngestMetrics run_ingest(const IngestConfig& config, const core::AcceleratorLibrary& library,
                         fleet::RoutingPolicy& router, std::uint64_t seed);

}  // namespace adaflow::ingest
