#include "adaflow/ingest/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <unordered_map>

#include "adaflow/common/error.hpp"
#include "adaflow/sim/stats.hpp"

namespace adaflow::ingest {

namespace {

// Distinct salts keep the per-component seed streams unrelated to each other
// and to the fleet's device-injector streams (which use the unsalted seed).
constexpr std::uint64_t kSessionSalt = 0x5345535349ULL;  // "SESSI"
constexpr std::uint64_t kNetworkSalt = 0x4e4554574fULL;  // "NETWO"
constexpr std::uint64_t kDecodeSalt = 0x4445434f44ULL;   // "DECOD"
constexpr std::uint64_t kIngestFaultSalt = 0x494e464cULL;

/// The pipeline on one event queue. Lives on the stack of run_ingest().
struct IngestSim {
  const IngestConfig& config;
  const core::AcceleratorLibrary& library;
  sim::EventQueue queue;
  fleet::FleetEngine engine;
  std::unique_ptr<faults::FaultInjector> injector;  ///< null = no scheduled faults

  std::vector<std::unique_ptr<CameraSession>> sessions;
  std::vector<std::unique_ptr<NetworkLink>> links;
  std::vector<StaleFilter> filters;

  /// One decoded-or-waiting frame between the filter and the fleet.
  struct Frame {
    double capture_s = 0.0;
    std::size_t session = 0;
  };
  std::vector<std::deque<Frame>> session_queues;
  std::vector<std::int64_t> session_queue_drops;
  std::size_t rr_cursor = 0;  ///< round-robin fairness across session queues
  int busy_workers = 0;
  bool retry_scheduled = false;
  Rng decode_rng;

  BrownoutController controller;
  /// Base (pre-brownout) library version per device; versions.size() when
  /// the device's initial mode is not in its library (never downgraded).
  std::vector<std::size_t> base_version;

  /// capture timestamps of frames currently inside the fleet, by tag.
  std::unordered_map<std::int64_t, double> pending;
  std::int64_t next_tag = 0;

  /// (completion time, latency) of recent deliveries for the p99 signal.
  std::deque<std::pair<double, double>> recent_latencies;
  double nominal_accuracy = 0.0;

  IngestMetrics metrics;

  IngestSim(const IngestConfig& c, const core::AcceleratorLibrary& lib,
            fleet::RoutingPolicy& router, std::uint64_t seed)
      : config(c), library(lib),
        engine(queue, lib, c.fleet, router, seed, c.duration_s),
        decode_rng(fleet::device_seed(seed ^ kDecodeSalt, 0)),
        controller(c.brownout) {
    if (config.faults.has_value()) {
      injector = std::make_unique<faults::FaultInjector>(
          *config.faults, fleet::device_seed(seed ^ kIngestFaultSalt, 0));
    }
    const std::size_t n = static_cast<std::size_t>(config.cameras);
    sessions.reserve(n);
    links.reserve(n);
    filters.resize(n);
    session_queues.resize(n);
    session_queue_drops.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      sessions.push_back(std::make_unique<CameraSession>(
          queue, config.camera, fleet::device_seed(seed ^ kSessionSalt, i), config.duration_s,
          "cam" + std::to_string(i)));
      links.push_back(std::make_unique<NetworkLink>(
          queue, config.network, fleet::device_seed(seed ^ kNetworkSalt, i), injector.get()));
    }
  }

  // --- admission ------------------------------------------------------------

  void on_network_deliver(std::size_t i, std::int64_t seq, double capture_s) {
    if (!filters[i].admit(seq)) {
      return;
    }
    const BrownoutController::Decision d = controller.decision();
    if (d.drop_all) {
      ++metrics.dropall_shed;
      return;
    }
    // Deterministic per-session thinning: keeping fixed residues (not random
    // drops) preserves an even temporal spacing of the surviving frames.
    if (d.thin && seq % static_cast<std::int64_t>(config.brownout.thin_keep_every) != 0) {
      ++metrics.thinned;
      return;
    }
    if (static_cast<std::int64_t>(session_queues[i].size()) >=
        config.decode.session_queue_capacity) {
      // Bounded queue: the arriving frame is dropped (the stale filter has
      // already guaranteed everything waiting is fresher-ordered than it).
      ++metrics.queue_drops;
      ++session_queue_drops[i];
      return;
    }
    session_queues[i].push_back(Frame{capture_s, i});
    try_start_decodes();
  }

  // --- decode ---------------------------------------------------------------

  void schedule_backpressure_retry() {
    if (retry_scheduled) {
      return;
    }
    const double when = queue.now() + config.decode.retry_interval_s;
    if (when > config.duration_s) {
      return;
    }
    retry_scheduled = true;
    queue.schedule_at(when, [this] {
      retry_scheduled = false;
      try_start_decodes();
    });
  }

  void try_start_decodes() {
    while (busy_workers < config.decode.workers) {
      if (engine.ingress_backlog() >= config.decode.backpressure_threshold) {
        // Explicit backpressure: the dispatcher is saturated, so decoding
        // more frames would only move the backlog downstream. Wait upstream.
        schedule_backpressure_retry();
        return;
      }
      const std::size_t n = session_queues.size();
      std::size_t found = n;
      for (std::size_t k = 0; k < n; ++k) {
        const std::size_t idx = (rr_cursor + k) % n;
        if (!session_queues[idx].empty()) {
          found = idx;
          break;
        }
      }
      if (found == n) {
        return;  // nothing to decode
      }
      rr_cursor = (found + 1) % n;
      const Frame f = session_queues[found].front();
      session_queues[found].pop_front();
      ++busy_workers;
      ++metrics.decode_started;
      queue.schedule_in(config.decode.cost_s, [this, f] { finish_decode(f); });
    }
  }

  void finish_decode(const Frame& f) {
    --busy_workers;
    bool failed = injector != nullptr && injector->decode_fault(queue.now());
    if (!failed && config.decode.fail_p > 0.0 && decode_rng.bernoulli(config.decode.fail_p)) {
      failed = true;
    }
    if (failed) {
      ++metrics.decode_failed;
    } else {
      const std::int64_t tag = next_tag++;
      pending.emplace(tag, f.capture_s);
      ++metrics.offered_to_fleet;
      if (engine.offer_frame(tag) == fleet::FleetEngine::Admit::kShed) {
        ++metrics.fleet_shed;
        pending.erase(tag);
      }
    }
    try_start_decodes();
  }

  // --- fleet result hooks ---------------------------------------------------

  void on_frame_done(std::int64_t tag, double accuracy) {
    const auto it = pending.find(tag);
    require(it != pending.end(), "fleet reported an unknown frame tag");
    const double latency = queue.now() - it->second;
    pending.erase(it);
    ++metrics.delivered;
    metrics.qoe_accuracy_sum += accuracy;
    if (accuracy + 1e-12 < nominal_accuracy) {
      ++metrics.degraded_delivered;
    }
    metrics.e2e_latency.record(latency);
    recent_latencies.emplace_back(queue.now(), latency);
  }

  void on_frame_lost(std::int64_t tag) {
    const auto it = pending.find(tag);
    require(it != pending.end(), "fleet lost an unknown frame tag");
    pending.erase(it);
    ++metrics.lost_in_fleet;
  }

  // --- brownout control -----------------------------------------------------

  double queue_fill_fraction() const {
    double fill = 0.0;
    for (const auto& q : session_queues) {
      fill = std::max(fill, static_cast<double>(q.size()) /
                                static_cast<double>(config.decode.session_queue_capacity));
    }
    if (config.fleet.ingress_capacity > 0) {
      fill = std::max(fill, static_cast<double>(engine.ingress_backlog()) /
                                static_cast<double>(config.fleet.ingress_capacity));
    }
    for (std::size_t i = 0; i < engine.device_count(); ++i) {
      const edge::DeviceSim& dev = engine.device(i);
      fill = std::max(fill, static_cast<double>(dev.queued()) /
                                static_cast<double>(dev.queue_capacity()));
    }
    return fill;
  }

  double recent_p99_s() {
    const double cutoff = queue.now() - config.brownout.latency_window_s;
    while (!recent_latencies.empty() && recent_latencies.front().first < cutoff) {
      recent_latencies.pop_front();
    }
    if (recent_latencies.empty()) {
      return 0.0;
    }
    std::vector<double> values;
    values.reserve(recent_latencies.size());
    for (const auto& entry : recent_latencies) {
      values.push_back(entry.second);
    }
    return sim::percentile(values, 0.99);
  }

  void apply_downgrade(bool downgrade) {
    for (std::size_t i = 0; i < engine.device_count(); ++i) {
      const std::size_t base = base_version[i];
      const core::AcceleratorLibrary& lib = engine.device_library(i);
      if (base >= lib.versions.size()) {
        continue;  // initial mode not in the library: leave this device alone
      }
      const std::size_t target =
          downgrade ? std::min(base + static_cast<std::size_t>(config.brownout.downgrade_steps),
                               lib.versions.size() - 1)
                    : base;
      const edge::DeviceSim& dev = engine.device(i);
      if (dev.switch_in_flight()) {
        continue;  // try again next tick; never interrupt a ladder
      }
      const std::size_t current = fleet::find_version(lib, dev.mode().model_version);
      if (current >= lib.versions.size() || current == target) {
        continue;
      }
      edge::SwitchAction action;
      action.target = fleet::fixed_mode_for(lib, target);
      action.switch_time_s = lib.reconfig_time_s;
      action.is_reconfiguration = true;
      engine.command_device_switch(i, action);
    }
  }

  void brownout_tick() {
    const double now = queue.now();
    const BrownoutController::Decision d =
        controller.update(now, queue_fill_fraction(), recent_p99_s());
    if (config.brownout.mode == BrownoutMode::kLadder) {
      apply_downgrade(d.downgrade);
    }
    try_start_decodes();  // backpressure may have cleared since the last wake
    const double next = now + config.brownout.poll_interval_s;
    if (next <= config.duration_s) {
      queue.schedule_at(next, [this] { brownout_tick(); });
    }
  }

  // --- lifecycle ------------------------------------------------------------

  IngestMetrics run() {
    engine.set_frame_hooks(
        [this](std::int64_t tag, double accuracy) { on_frame_done(tag, accuracy); },
        [this](std::int64_t tag) { on_frame_lost(tag); });
    engine.start();
    base_version.reserve(engine.device_count());
    for (std::size_t i = 0; i < engine.device_count(); ++i) {
      const core::AcceleratorLibrary& lib = engine.device_library(i);
      const std::size_t base =
          fleet::find_version(lib, engine.device(i).mode().model_version);
      base_version.push_back(base);
      if (base < lib.versions.size()) {
        nominal_accuracy = std::max(nominal_accuracy, lib.versions[base].accuracy);
      }
    }
    for (std::size_t i = 0; i < sessions.size(); ++i) {
      links[i]->set_on_deliver([this, i](std::int64_t seq, double capture_s) {
        on_network_deliver(i, seq, capture_s);
      });
      sessions[i]->set_on_frame([this, i](std::int64_t seq, double capture_s) {
        links[i]->transmit(seq, capture_s);
      });
      sessions[i]->start();
    }
    queue.schedule_at(config.brownout.poll_interval_s, [this] { brownout_tick(); });

    queue.run_until(config.duration_s);

    // --- finalize ----------------------------------------------------------
    controller.finalize(config.duration_s);
    metrics.duration_s = config.duration_s;
    metrics.brownout = controller.stats();
    metrics.final_tier = controller.tier();
    metrics.decode_in_flight = busy_workers;
    metrics.fleet_backlog = static_cast<std::int64_t>(pending.size());
    metrics.sessions.reserve(sessions.size());
    for (std::size_t i = 0; i < sessions.size(); ++i) {
      IngestSessionResult r;
      r.name = sessions[i]->name();
      r.final_state = sessions[i]->state();
      r.session = sessions[i]->stats();
      r.network = links[i]->stats();
      r.filter = filters[i].stats();
      r.queue_drops = session_queue_drops[i];
      r.queued_at_end = static_cast<std::int64_t>(session_queues[i].size());
      metrics.captured += r.session.frames_captured;
      metrics.duplicates += r.network.duplicates;
      metrics.network_lost += r.network.lost();
      metrics.network_in_flight += r.network.in_flight();
      metrics.stale_dropped += r.filter.dropped_stale;
      metrics.reordered += r.filter.reordered;
      metrics.session_queued += r.queued_at_end;
      metrics.sessions.push_back(std::move(r));
    }
    if (injector != nullptr) {
      metrics.faults.network_outage_drops =
          injector->injected(faults::FaultKind::kNetworkOutage);
      metrics.faults.decode_faults_injected =
          injector->injected(faults::FaultKind::kDecodeFault);
    }
    metrics.fleet = engine.finalize(config.duration_s);
    metrics.fleet.e2e_latency = metrics.e2e_latency;
    return std::move(metrics);
  }
};

}  // namespace

void IngestConfig::validate() const {
  if (cameras <= 0) {
    throw ConfigError("IngestConfig.cameras must be positive");
  }
  if (!(duration_s > 0.0) || !std::isfinite(duration_s)) {
    throw ConfigError("IngestConfig.duration_s must be positive");
  }
  if (!(decode.cost_s >= 0.0) || !std::isfinite(decode.cost_s)) {
    throw ConfigError("IngestConfig.decode.cost_s must be >= 0");
  }
  if (decode.workers <= 0) {
    throw ConfigError("IngestConfig.decode.workers must be positive");
  }
  if (!std::isfinite(decode.fail_p) || decode.fail_p < 0.0 || decode.fail_p > 1.0) {
    throw ConfigError("IngestConfig.decode.fail_p must be in [0, 1]");
  }
  if (decode.session_queue_capacity <= 0) {
    throw ConfigError("IngestConfig.decode.session_queue_capacity must be positive");
  }
  if (decode.backpressure_threshold <= 0) {
    throw ConfigError("IngestConfig.decode.backpressure_threshold must be positive");
  }
  if (!(decode.retry_interval_s > 0.0)) {
    throw ConfigError("IngestConfig.decode.retry_interval_s must be positive");
  }
  brownout.validate();
  fleet.validate();
  if (faults.has_value()) {
    faults->validate();
  }
}

IngestMetrics run_ingest(const IngestConfig& config, const core::AcceleratorLibrary& library,
                         fleet::RoutingPolicy& router, std::uint64_t seed) {
  config.validate();
  require(!library.versions.empty(), "ingest library has no versions");
  IngestSim sim(config, library, router, seed);
  return sim.run();
}

}  // namespace adaflow::ingest
