#include "adaflow/ingest/brownout.hpp"

#include <cmath>

#include "adaflow/common/error.hpp"

namespace adaflow::ingest {

const char* brownout_mode_name(BrownoutMode mode) {
  switch (mode) {
    case BrownoutMode::kOff:
      return "off";
    case BrownoutMode::kLadder:
      return "ladder";
    case BrownoutMode::kDropAll:
      return "drop-all";
  }
  return "unknown";
}

void BrownoutConfig::validate() const {
  require(std::isfinite(poll_interval_s) && poll_interval_s > 0.0,
          "brownout config: poll_interval_s must be positive");
  require(std::isfinite(tier1_fill) && tier1_fill > 0.0 && tier1_fill <= 1.0,
          "brownout config: tier1_fill must be in (0, 1]");
  require(std::isfinite(tier2_fill) && tier2_fill >= tier1_fill && tier2_fill <= 1.0,
          "brownout config: tier2_fill must be in [tier1_fill, 1]");
  require(std::isfinite(tier1_latency_s) && tier1_latency_s > 0.0,
          "brownout config: tier1_latency_s must be positive");
  require(std::isfinite(tier2_latency_s) && tier2_latency_s >= tier1_latency_s,
          "brownout config: tier2_latency_s must be >= tier1_latency_s");
  require(std::isfinite(release_fraction) && release_fraction > 0.0 && release_fraction < 1.0,
          "brownout config: release_fraction must be in (0, 1)");
  require(std::isfinite(min_dwell_s) && min_dwell_s >= 0.0,
          "brownout config: min_dwell_s must be >= 0");
  require(thin_keep_every >= 2, "brownout config: thin_keep_every must be >= 2");
  require(downgrade_steps >= 1, "brownout config: downgrade_steps must be >= 1");
  require(std::isfinite(latency_window_s) && latency_window_s > 0.0,
          "brownout config: latency_window_s must be positive");
}

BrownoutController::BrownoutController(const BrownoutConfig& config) : config_(config) {
  config_.validate();
}

int BrownoutController::desired_tier(double fill, double latency_s) const {
  switch (config_.mode) {
    case BrownoutMode::kOff:
      return 0;
    case BrownoutMode::kDropAll:
      // Binary admission control on the tier-1 thresholds.
      return (fill >= config_.tier1_fill || latency_s >= config_.tier1_latency_s) ? 1 : 0;
    case BrownoutMode::kLadder:
      break;
  }
  int tier = 0;
  if (fill >= config_.tier1_fill || latency_s >= config_.tier1_latency_s) {
    tier = 1;
  }
  if (fill >= config_.tier2_fill || latency_s >= config_.tier2_latency_s) {
    tier = 2;
  }
  return tier;
}

bool BrownoutController::below_release(double fill, double latency_s, int tier) const {
  double fill_engage = config_.tier1_fill;
  double latency_engage = config_.tier1_latency_s;
  if (config_.mode == BrownoutMode::kLadder && tier >= 2) {
    fill_engage = config_.tier2_fill;
    latency_engage = config_.tier2_latency_s;
  }
  // BOTH signals must clear the release line; releasing on one while the
  // other still burns would re-engage a tick later (flapping).
  return fill < config_.release_fraction * fill_engage &&
         latency_s < config_.release_fraction * latency_engage;
}

void BrownoutController::account_time(double now_s) {
  const double slice = now_s - last_update_s_;
  if (slice > 0.0 && tier_ > 0) {
    if (config_.mode == BrownoutMode::kDropAll) {
      stats_.time_shedding_s += slice;
    } else if (tier_ == 1) {
      stats_.time_tier1_s += slice;
    } else {
      stats_.time_tier2_s += slice;
    }
  }
  last_update_s_ = now_s;
}

BrownoutController::Decision BrownoutController::update(double now_s, double fill_fraction,
                                                        double e2e_p99_s) {
  account_time(now_s);
  const int desired = desired_tier(fill_fraction, e2e_p99_s);
  if (desired > tier_) {
    // Engaging is immediate — overload protection must not wait out a dwell.
    if (tier_ < 1 && desired >= 1) {
      ++stats_.tier1_engagements;
    }
    if (tier_ < 2 && desired >= 2) {
      ++stats_.tier2_engagements;
    }
    tier_ = desired;
    last_change_s_ = now_s;
  } else if (desired < tier_ && now_s - last_change_s_ >= config_.min_dwell_s &&
             below_release(fill_fraction, e2e_p99_s, tier_)) {
    // Releasing steps down one tier at a time, each step earning its own
    // dwell — recovery is deliberately slower than engagement.
    --tier_;
    last_change_s_ = now_s;
  }
  return decision();
}

BrownoutController::Decision BrownoutController::decision() const {
  Decision d;
  switch (config_.mode) {
    case BrownoutMode::kOff:
      break;
    case BrownoutMode::kDropAll:
      d.drop_all = tier_ >= 1;
      break;
    case BrownoutMode::kLadder:
      // The two tiers trade different currencies: tier 1 sacrifices temporal
      // resolution (instant, free), tier 2 sacrifices model accuracy to buy
      // real capacity (slower, costs a reconfiguration). Once the fleet runs
      // the fast variant it has the headroom to serve every frame, so
      // thinning is lifted — keeping it would throw away frames the
      // downgraded fleet could deliver.
      d.thin = tier_ == 1;
      d.downgrade = tier_ >= 2;
      break;
  }
  return d;
}

void BrownoutController::finalize(double t_end_s) { account_time(t_end_s); }

}  // namespace adaflow::ingest
