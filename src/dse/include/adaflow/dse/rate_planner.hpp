#pragma once

/// \file rate_planner.hpp
/// Data-rate-aware folding planning: pick the folding whose *sustained*
/// throughput matches a workload's offered data rate instead of maximizing
/// peak FPS. The Data-Rate-Aware High-Speed CNN Inference line of work
/// (PAPERS.md) observes that a dataflow accelerator provisioned for peak FPS
/// wastes parallelism (LUTs/DSPs scale with PE*SIMD) whenever the sustained
/// offered rate is far below peak — capacity a multi-tenant coordinator
/// would rather hand to a hungrier tenant.
///
/// The planner wraps hls::folding_for_target_fps: the tenant's aggregate
/// offered rate is split over its device share, inflated by a headroom
/// factor (queueing at utilization ~1 is unstable), and the greedy
/// bottleneck walk stops as soon as that per-device rate is sustained. The
/// returned plan reports the achieved sustained FPS and the parallelism
/// cost so callers can quantify what rate-matching saved versus a
/// peak-provisioned folding (see parallelism_cost / plan_peak_folding).

#include <cstdint>

#include "adaflow/hls/folding.hpp"
#include "adaflow/nn/model.hpp"

namespace adaflow::dse {

struct RatePlanConfig {
  /// Sustained-rate multiplier the folding must cover: target = offered
  /// rate / devices * headroom. >1 keeps device utilization bounded away
  /// from 1 so queues stay finite.
  double headroom = 1.2;
  double clock_hz = 100e6;

  /// Throws ConfigError naming the offending field.
  void validate() const;
};

/// One tenant's rate-matched folding.
struct RateFoldingPlan {
  double offered_fps = 0.0;     ///< aggregate offered rate planned against
  double target_fps = 0.0;      ///< per-device target after share + headroom
  hls::FoldingConfig folding;   ///< the rate-matched folding
  double sustained_fps = 0.0;   ///< clock / bottleneck cycles of `folding`
  bool meets_target = false;    ///< sustained_fps >= target_fps
  std::int64_t parallelism = 0; ///< sum of pe*simd — the hardware-cost proxy
};

/// Steady-state throughput of \p folding on \p model: the initiation
/// interval is the slowest MVTU layer's cycles, so FPS = clock / max cycles.
double sustained_fps(const nn::Model& model, const hls::FoldingConfig& folding, double clock_hz);

/// Total PE*SIMD over all layers: the resource proxy rate-matching minimizes
/// (MVTU LUT/DSP cost grows essentially linearly in it).
std::int64_t parallelism_cost(const hls::FoldingConfig& folding);

/// Folding matched to \p offered_fps spread over \p devices: calls
/// hls::folding_for_target_fps at offered_fps / devices * headroom.
/// meets_target is false when the model is fully unrolled below the target
/// (the offered rate exceeds what one device can sustain).
RateFoldingPlan plan_folding_for_rate(const nn::Model& model, double offered_fps, int devices,
                                      const RatePlanConfig& config);

/// The peak-FPS baseline the rate planner is measured against: the fully
/// provisioned folding (target effectively infinite — every layer steps to
/// its maximum divisor). Same RateFoldingPlan shape so the two plans diff
/// directly (parallelism saved, FPS left on the table).
RateFoldingPlan plan_peak_folding(const nn::Model& model, const RatePlanConfig& config);

}  // namespace adaflow::dse
