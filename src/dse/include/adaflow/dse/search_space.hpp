#pragma once

/// \file search_space.hpp
/// The per-layer (PE, SIMD) folding lattice the design-space explorer walks.
///
/// Every MVTU layer contributes one axis pair: PE ranges over the divisors of
/// ch_out, SIMD over the divisors of ch_in — the FINN folding legality rules
/// are built into the space, so no candidate ever needs an after-the-fact
/// validity filter. Each candidate is pre-scored with its per-frame cycle
/// count (perf model) and its stage resource cost (fpga model), so the
/// explorer's inner loop is pure arithmetic over precomputed rows.
///
/// Pruning-divisibility is a *search* constraint too: the dataflow-aware
/// pruner can only remove filters in steps of lcm(PE_i, SIMD_i+1)
/// (see pruning/prune.hpp), so a folding whose lcm granularity is coarser
/// than `max_prune_granularity * ch_out` would make the library's 5%-step
/// rate sweep collapse onto a few achievable rates. Such combinations are
/// excluded while searching, not discarded afterwards.

#include <cstdint>
#include <vector>

#include "adaflow/fpga/device.hpp"
#include "adaflow/fpga/resources.hpp"
#include "adaflow/hls/compiled_model.hpp"
#include "adaflow/hls/folding.hpp"
#include "adaflow/perf/perf.hpp"

namespace adaflow::dse {

/// One (PE, SIMD) point of a layer's lattice, pre-evaluated.
struct FoldingCandidate {
  hls::LayerFolding folding;
  std::int64_t cycles = 0;        ///< per-frame MVTU cycles (variant-adjusted)
  fpga::ResourceUsage resources;  ///< fixed-variant stage cost
  double cost = 0.0;              ///< budget-normalized scalar resource cost
};

/// The lattice slice of one MVTU layer. Candidates are sorted by ascending
/// cost with deterministic (pe, simd) tie-breaking.
struct LayerSpace {
  hls::StageDesc desc;
  std::vector<FoldingCandidate> candidates;
  std::int64_t min_cycles = 0;  ///< fastest candidate (full unroll or caps)
};

/// Hard constraints applied while the space is built / walked.
struct SearchConstraints {
  std::int64_t max_pe = 0;    ///< cap on PE (0 = up to ch_out)
  std::int64_t max_simd = 0;  ///< cap on SIMD (0 = up to ch_in)
  /// Upper bound on lcm(PE_i, SIMD_i+1) / ch_out_i — the pruning-rate
  /// granularity a folding permits. 0 disables the constraint (single
  /// accelerators); the library generator sets it so every folding it ships
  /// still admits a fine-grained pruning sweep.
  double max_prune_granularity = 0.0;
};

/// The whole lattice plus everything folding-independent: pool-stage cycles
/// and the fixed resource overhead (pool stages + top-level glue).
struct SearchSpace {
  std::vector<LayerSpace> layers;      ///< MVTU layers in pipeline order
  std::int64_t pool_ii_cycles = 0;     ///< slowest pool stage (variant-adjusted)
  std::int64_t pool_latency_cycles = 0;  ///< sum over pool stages
  fpga::ResourceUsage fixed_overhead;  ///< pool + top-level, fixed-variant
  int weight_bits = 0;
  int act_bits = 0;
};

/// Saturating product of per-layer candidate counts (double: CNV-scale
/// lattices overflow int64).
double space_size(const SearchSpace& space);

/// The pruning-granularity coupling between adjacent MVTU layers: true when
/// removing filters from a layer with \p ch_out outputs, folded at \p pe and
/// feeding a consumer folded at \p simd_next, still allows keep-count steps
/// no coarser than \p max_granularity * ch_out. max_granularity <= 0 accepts
/// everything.
bool prune_compatible(std::int64_t ch_out, std::int64_t pe, std::int64_t simd_next,
                      double max_granularity);

/// Builds the lattice for \p geometry (a compile_geometry / compile_model
/// result). Candidate costs are normalized against \p budget; \p variant
/// selects whether cycle counts carry the Flexible guard/setup overhead.
/// Candidate evaluation fans out over common/parallel.
SearchSpace build_search_space(const hls::CompiledModel& geometry, int weight_bits, int act_bits,
                               hls::AcceleratorVariant variant,
                               const fpga::ResourceUsage& budget,
                               const SearchConstraints& constraints,
                               const fpga::ResourceModelConstants& resource_constants,
                               const perf::PerfModelConstants& perf_constants);

}  // namespace adaflow::dse
