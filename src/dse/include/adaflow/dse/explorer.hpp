#pragma once

/// \file explorer.hpp
/// Deterministic, seeded design-space exploration over per-layer (PE, SIMD)
/// folding under an FPGA resource budget.
///
/// Strategy: the steady-state initiation interval of a feed-forward dataflow
/// pipeline is the max per-stage cycle count, and resources are additive, so
/// the explorer sweeps the (finite) set of achievable initiation intervals
/// and, for each, finds a cheap folding meeting it — exhaustively when the
/// whole lattice is small, with a per-layer beam search otherwise — then
/// refines the incumbent with seeded simulated annealing. Every feasible
/// point feeds one Pareto frontier (throughput vs. resources); the objective
/// only decides which frontier point is "best".
///
/// Determinism: candidate orders are sorted with explicit tie-breaking,
/// parallel evaluation writes to pre-assigned slots, and the annealer draws
/// from an explicit Rng(seed) — the same seed always returns a bit-identical
/// frontier.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "adaflow/dse/search_space.hpp"
#include "adaflow/fpga/device.hpp"
#include "adaflow/graph/graph.hpp"
#include "adaflow/nn/model.hpp"

namespace adaflow::dse {

enum class Objective {
  kMaxFps,        ///< max throughput that fits the resource budget
  kMinResources,  ///< cheapest folding meeting a target data rate
  kBalanced,      ///< knee: max throughput per unit of the scarcest resource
};

const char* objective_name(Objective objective);
Objective objective_by_name(const std::string& name);  ///< throws ConfigError
std::vector<std::string> objective_names();

struct ExplorerConfig {
  Objective objective = Objective::kMaxFps;

  /// Resource cap: either an absolute usage, or this fraction of the device.
  std::optional<fpga::ResourceUsage> budget;
  double budget_fraction = 0.7;

  /// Required for kMinResources: the data rate the folding must sustain.
  double target_fps = 0.0;

  hls::AcceleratorVariant variant = hls::AcceleratorVariant::kFixed;
  SearchConstraints constraints;

  int beam_width = 8;        ///< beam states kept per layer (>= 1)
  int anneal_iters = 2000;   ///< simulated-annealing refinement steps (0 = off)
  std::uint64_t seed = 7;    ///< annealer seed; same seed => same frontier
  double exhaustive_limit = 100000.0;  ///< full-lattice cutoff (combo count)
  int max_ii_targets = 96;   ///< initiation-interval sweep density

  fpga::ResourceModelConstants resource_constants = fpga::default_resource_constants();
  perf::PerfModelConstants perf_constants = perf::default_perf_constants();
};

/// One fully-evaluated folding.
struct DesignPoint {
  hls::FoldingConfig folding;
  double fps = 0.0;
  double latency_s = 0.0;
  std::int64_t ii_cycles = 0;
  fpga::ResourceUsage resources;
  /// MVTU layer limiting the pipeline, or -1 when a pool stage does.
  std::int64_t bottleneck_layer = -1;
};

/// Per-layer slice of a DesignPoint (the bottleneck breakdown tables).
struct LayerReport {
  std::string name;
  std::int64_t pe = 0;
  std::int64_t simd = 0;
  std::int64_t cycles = 0;
  double luts = 0.0;
  double bram18 = 0.0;
  bool is_bottleneck = false;
};

struct ExplorationResult {
  /// Non-dominated feasible points, fastest first (ties: fewer LUTs).
  std::vector<DesignPoint> frontier;
  std::size_t best_index = 0;  ///< objective winner within frontier
  bool objective_met = true;   ///< false when e.g. target_fps is unreachable
  bool exhaustive = false;     ///< whole lattice enumerated
  std::int64_t evaluated = 0;  ///< design points scored
  double space_size = 0.0;     ///< full lattice cardinality
  fpga::ResourceUsage budget;  ///< resolved absolute budget

  /// The objective's pick; throws ConfigError when the frontier is empty
  /// (no folding fits the budget).
  const DesignPoint& best() const;
};

/// Explores the folding lattice of \p geometry. \p weight_bits / \p act_bits
/// parameterize the resource model (StageDescs carry no precisions).
ExplorationResult explore_geometry(const hls::CompiledModel& geometry, int weight_bits,
                                   int act_bits, const fpga::FpgaDevice& device,
                                   const ExplorerConfig& config);

/// Convenience wrapper: derives geometry and precisions from \p model
/// (untrained models work — only layer shapes matter).
ExplorationResult explore(const nn::Model& model, const fpga::FpgaDevice& device,
                          const ExplorerConfig& config);

/// Graph-IR entry point: lowers \p graph to stage geometry (branchy DAGs
/// included — detection heads with concat/upsample land on the non-MVTU
/// overhead path) and explores its folding lattice with the graph's
/// quantization.
ExplorationResult explore_graph(const graph::Graph& graph, const fpga::FpgaDevice& device,
                                const ExplorerConfig& config);

/// Recomputes the per-layer breakdown of \p point against \p space.
std::vector<LayerReport> layer_breakdown(const SearchSpace& space, const DesignPoint& point);

}  // namespace adaflow::dse
