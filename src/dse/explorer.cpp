#include "adaflow/dse/explorer.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "adaflow/common/error.hpp"
#include "adaflow/common/math.hpp"
#include "adaflow/common/parallel.hpp"
#include "adaflow/common/rng.hpp"
#include "adaflow/graph/lower.hpp"

namespace adaflow::dse {

namespace {

/// Candidate-index assignment, one per MVTU layer.
using Chosen = std::vector<std::int32_t>;

double scalar_cost(const fpga::ResourceUsage& r, const fpga::ResourceUsage& budget) {
  double cost = 0.0;
  cost += budget.luts > 0.0 ? r.luts / budget.luts : r.luts * 1e-6;
  cost += budget.flip_flops > 0.0 ? r.flip_flops / budget.flip_flops : r.flip_flops * 1e-6;
  cost += budget.bram18 > 0.0 ? r.bram18 / budget.bram18 : r.bram18 * 1e-3;
  cost += budget.dsp > 0.0 ? r.dsp / budget.dsp : r.dsp * 1e-3;
  return cost;
}

/// The pruning-granularity coupling of layer \p li's candidate against the
/// already-chosen producer folding. Only conv producers are prunable.
bool compatible_with_producer(const SearchSpace& space, std::size_t li, std::int64_t prev_pe,
                              std::int64_t simd, double max_granularity) {
  if (li == 0 || max_granularity <= 0.0) {
    return true;
  }
  const hls::StageDesc& producer = space.layers[li - 1].desc;
  if (producer.kind != hls::StageKind::kConv) {
    return true;
  }
  return prune_compatible(producer.ch_out, prev_pe, simd, max_granularity);
}

/// Checks every adjacent producer/consumer pair of a full assignment.
bool assignment_prune_compatible(const SearchSpace& space, const Chosen& chosen,
                                 double max_granularity) {
  if (max_granularity <= 0.0) {
    return true;
  }
  for (std::size_t li = 1; li < space.layers.size(); ++li) {
    const std::int64_t prev_pe =
        space.layers[li - 1].candidates[static_cast<std::size_t>(chosen[li - 1])].folding.pe;
    const std::int64_t simd =
        space.layers[li].candidates[static_cast<std::size_t>(chosen[li])].folding.simd;
    if (!compatible_with_producer(space, li, prev_pe, simd, max_granularity)) {
      return false;
    }
  }
  return true;
}

struct Evaluated {
  DesignPoint point;
  double cost = 0.0;
  bool feasible = false;
};

Evaluated evaluate(const SearchSpace& space, const Chosen& chosen, double clock_hz,
                   hls::AcceleratorVariant variant, const fpga::ResourceUsage& budget,
                   const fpga::ResourceModelConstants& k) {
  Evaluated e;
  e.point.folding.layers.reserve(space.layers.size());
  fpga::ResourceUsage total = space.fixed_overhead;
  std::int64_t worst = space.pool_ii_cycles;
  std::int64_t sum_cycles = space.pool_latency_cycles;
  for (std::size_t li = 0; li < space.layers.size(); ++li) {
    const FoldingCandidate& c = space.layers[li].candidates[static_cast<std::size_t>(chosen[li])];
    e.point.folding.layers.push_back(c.folding);
    total += c.resources;
    sum_cycles += c.cycles;
    if (c.cycles > worst) {
      worst = c.cycles;
      e.point.bottleneck_layer = static_cast<std::int64_t>(li);
    }
  }
  if (variant == hls::AcceleratorVariant::kFlexible) {
    total.luts *= k.flexible_lut_factor;
    total.flip_flops *= k.flexible_ff_factor;
  }
  e.point.resources = total;
  e.point.ii_cycles = worst;
  e.point.fps = clock_hz / static_cast<double>(worst);
  e.point.latency_s = static_cast<double>(sum_cycles) / clock_hz;
  e.cost = scalar_cost(total, budget);
  e.feasible = fpga::fits_budget(total, budget);
  return e;
}

bool dominates(const DesignPoint& a, const DesignPoint& b) {
  if (a.fps < b.fps || a.resources.luts > b.resources.luts ||
      a.resources.flip_flops > b.resources.flip_flops ||
      a.resources.bram18 > b.resources.bram18 || a.resources.dsp > b.resources.dsp) {
    return false;
  }
  return a.fps > b.fps || a.resources.luts < b.resources.luts ||
         a.resources.flip_flops < b.resources.flip_flops ||
         a.resources.bram18 < b.resources.bram18 || a.resources.dsp < b.resources.dsp;
}

bool folding_less(const hls::FoldingConfig& a, const hls::FoldingConfig& b) {
  for (std::size_t i = 0; i < std::min(a.layers.size(), b.layers.size()); ++i) {
    if (a.layers[i].pe != b.layers[i].pe) {
      return a.layers[i].pe < b.layers[i].pe;
    }
    if (a.layers[i].simd != b.layers[i].simd) {
      return a.layers[i].simd < b.layers[i].simd;
    }
  }
  return a.layers.size() < b.layers.size();
}

bool folding_equal(const hls::FoldingConfig& a, const hls::FoldingConfig& b) {
  if (a.layers.size() != b.layers.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.layers.size(); ++i) {
    if (a.layers[i].pe != b.layers[i].pe || a.layers[i].simd != b.layers[i].simd) {
      return false;
    }
  }
  return true;
}

/// Deduplicates by folding and strips dominated points; sorted fastest-first.
std::vector<DesignPoint> pareto_filter(std::vector<DesignPoint> points) {
  std::sort(points.begin(), points.end(), [](const DesignPoint& a, const DesignPoint& b) {
    if (a.fps != b.fps) {
      return a.fps > b.fps;
    }
    if (a.resources.luts != b.resources.luts) {
      return a.resources.luts < b.resources.luts;
    }
    if (a.resources.bram18 != b.resources.bram18) {
      return a.resources.bram18 < b.resources.bram18;
    }
    return folding_less(a.folding, b.folding);
  });
  points.erase(std::unique(points.begin(), points.end(),
                           [](const DesignPoint& a, const DesignPoint& b) {
                             return folding_equal(a.folding, b.folding);
                           }),
               points.end());
  std::vector<DesignPoint> frontier;
  for (const DesignPoint& p : points) {
    bool dominated = false;
    for (const DesignPoint& q : frontier) {
      if (dominates(q, p)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) {
      frontier.push_back(p);
    }
  }
  return frontier;
}

/// Full-lattice enumeration (small spaces), chunked over common/parallel.
/// Each chunk writes its local Pareto set to a pre-assigned slot; chunks are
/// merged in slot order, so the result is independent of thread timing.
std::vector<DesignPoint> enumerate_exhaustive(const SearchSpace& space, double clock_hz,
                                              hls::AcceleratorVariant variant,
                                              const fpga::ResourceUsage& budget,
                                              const ExplorerConfig& config,
                                              std::int64_t* evaluated) {
  std::int64_t total = 1;
  for (const LayerSpace& layer : space.layers) {
    total *= static_cast<std::int64_t>(layer.candidates.size());
  }
  const std::int64_t chunk = std::max<std::int64_t>(
      1024, ceil_div(total, static_cast<std::int64_t>(parallel_worker_count()) * 4));
  const std::int64_t chunks = ceil_div(total, chunk);

  std::vector<std::vector<DesignPoint>> slots(static_cast<std::size_t>(chunks));
  std::vector<std::int64_t> counts(static_cast<std::size_t>(chunks), 0);
  parallel_for(chunks, [&](std::int64_t ci) {
    std::vector<DesignPoint> local;
    Chosen chosen(space.layers.size(), 0);
    const std::int64_t lo = ci * chunk;
    const std::int64_t hi = std::min(total, lo + chunk);
    for (std::int64_t combo = lo; combo < hi; ++combo) {
      std::int64_t rem = combo;
      for (std::size_t li = 0; li < space.layers.size(); ++li) {
        const auto n = static_cast<std::int64_t>(space.layers[li].candidates.size());
        chosen[li] = static_cast<std::int32_t>(rem % n);
        rem /= n;
      }
      if (!assignment_prune_compatible(space, chosen,
                                       config.constraints.max_prune_granularity)) {
        continue;
      }
      Evaluated e = evaluate(space, chosen, clock_hz, variant, budget,
                             config.resource_constants);
      ++counts[static_cast<std::size_t>(ci)];
      if (e.feasible) {
        local.push_back(std::move(e.point));
      }
      if (local.size() >= 8192) {
        local = pareto_filter(std::move(local));
      }
    }
    slots[static_cast<std::size_t>(ci)] = pareto_filter(std::move(local));
  });

  std::vector<DesignPoint> merged;
  for (std::size_t ci = 0; ci < slots.size(); ++ci) {
    merged.insert(merged.end(), slots[ci].begin(), slots[ci].end());
    *evaluated += counts[ci];
  }
  return merged;
}

struct BeamState {
  Chosen chosen;
  fpga::ResourceUsage resources;
  double cost = 0.0;
  std::int64_t prev_pe = 1;
};

/// Cheapest folding whose every MVTU stage meets \p target_ii cycles, found
/// with a per-layer beam over the cost-sorted candidate lists.
std::vector<DesignPoint> beam_for_target(const SearchSpace& space, std::int64_t target_ii,
                                         double clock_hz, hls::AcceleratorVariant variant,
                                         const fpga::ResourceUsage& budget,
                                         const ExplorerConfig& config, std::int64_t* evaluated) {
  std::vector<BeamState> beam(1);
  for (std::size_t li = 0; li < space.layers.size(); ++li) {
    const LayerSpace& layer = space.layers[li];
    std::vector<BeamState> next;
    for (const BeamState& state : beam) {
      for (std::size_t c = 0; c < layer.candidates.size(); ++c) {
        const FoldingCandidate& cand = layer.candidates[c];
        if (cand.cycles > target_ii ||
            !compatible_with_producer(space, li, state.prev_pe, cand.folding.simd,
                                      config.constraints.max_prune_granularity)) {
          continue;
        }
        BeamState s = state;
        s.chosen.push_back(static_cast<std::int32_t>(c));
        s.resources += cand.resources;
        s.cost += cand.cost;
        s.prev_pe = cand.folding.pe;
        next.push_back(std::move(s));
      }
    }
    if (next.empty()) {
      return {};  // target unreachable under the constraints
    }
    std::sort(next.begin(), next.end(), [](const BeamState& a, const BeamState& b) {
      if (a.cost != b.cost) {
        return a.cost < b.cost;
      }
      return a.chosen < b.chosen;
    });
    if (next.size() > static_cast<std::size_t>(config.beam_width)) {
      next.resize(static_cast<std::size_t>(config.beam_width));
    }
    beam = std::move(next);
  }

  std::vector<DesignPoint> points;
  for (const BeamState& state : beam) {
    Evaluated e =
        evaluate(space, state.chosen, clock_hz, variant, budget, config.resource_constants);
    ++*evaluated;
    if (e.feasible) {
      points.push_back(std::move(e.point));
    }
  }
  return points;
}

/// The sorted set of initiation intervals worth targeting: every distinct
/// achievable per-layer cycle count, floored at the best II any folding can
/// reach, subsampled to max_ii_targets.
std::vector<std::int64_t> ii_targets(const SearchSpace& space, const ExplorerConfig& config) {
  std::int64_t floor_ii = space.pool_ii_cycles;
  for (const LayerSpace& layer : space.layers) {
    floor_ii = std::max(floor_ii, layer.min_cycles);
  }
  std::set<std::int64_t> distinct;
  for (const LayerSpace& layer : space.layers) {
    for (const FoldingCandidate& c : layer.candidates) {
      if (c.cycles >= floor_ii) {
        distinct.insert(c.cycles);
      }
    }
  }
  distinct.insert(floor_ii);
  std::vector<std::int64_t> targets(distinct.begin(), distinct.end());
  const auto max_targets = static_cast<std::size_t>(std::max(2, config.max_ii_targets));
  if (targets.size() > max_targets) {
    std::vector<std::int64_t> sampled;
    sampled.reserve(max_targets);
    for (std::size_t i = 0; i < max_targets; ++i) {
      const std::size_t j = i * (targets.size() - 1) / (max_targets - 1);
      sampled.push_back(targets[j]);
    }
    sampled.erase(std::unique(sampled.begin(), sampled.end()), sampled.end());
    targets = std::move(sampled);
  }
  return targets;
}

double objective_score(const Evaluated& e, const ExplorerConfig& config,
                       const fpga::FpgaDevice& device) {
  constexpr double kInfeasiblePenalty = 1e15;
  switch (config.objective) {
    case Objective::kMaxFps:
      return -e.point.fps + (e.feasible ? 0.0 : kInfeasiblePenalty * e.cost);
    case Objective::kMinResources:
      return e.cost + (e.feasible && e.point.fps + 1e-9 >= config.target_fps
                           ? 0.0
                           : kInfeasiblePenalty);
    case Objective::kBalanced: {
      const double pressure =
          fpga::max_utilization(fpga::utilization(e.point.resources, device));
      return -(e.point.fps / std::max(1e-12, pressure)) +
             (e.feasible ? 0.0 : kInfeasiblePenalty * e.cost);
    }
  }
  return 0.0;
}

/// Seeded simulated-annealing refinement around \p start. Explores single-
/// layer folding moves; every feasible point visited is returned so the
/// frontier benefits even from rejected downhill excursions.
std::vector<DesignPoint> anneal(const SearchSpace& space, const Chosen& start, double clock_hz,
                                hls::AcceleratorVariant variant,
                                const fpga::ResourceUsage& budget, const ExplorerConfig& config,
                                const fpga::FpgaDevice& device, std::int64_t* evaluated) {
  std::vector<DesignPoint> visited;
  if (config.anneal_iters <= 0 || space.layers.empty()) {
    return visited;
  }
  Rng rng(config.seed);
  Chosen current = start;
  Evaluated cur_eval =
      evaluate(space, current, clock_hz, variant, budget, config.resource_constants);
  double cur_score = objective_score(cur_eval, config, device);
  const double t0 = std::max(1.0, std::fabs(cur_score)) * 0.05;

  for (int iter = 0; iter < config.anneal_iters; ++iter) {
    const auto li = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(space.layers.size()) - 1));
    const auto n = static_cast<std::int64_t>(space.layers[li].candidates.size());
    const auto ci = static_cast<std::int32_t>(rng.uniform_int(0, n - 1));
    if (ci == current[li]) {
      continue;
    }
    Chosen moved = current;
    moved[li] = ci;
    if (!assignment_prune_compatible(space, moved, config.constraints.max_prune_granularity)) {
      continue;
    }
    Evaluated e = evaluate(space, moved, clock_hz, variant, budget, config.resource_constants);
    ++*evaluated;
    if (e.feasible) {
      visited.push_back(e.point);
    }
    const double score = objective_score(e, config, device);
    const double temp =
        t0 * (1.0 - static_cast<double>(iter) / static_cast<double>(config.anneal_iters));
    const bool accept =
        score <= cur_score ||
        (temp > 0.0 && rng.uniform() < std::exp(-(score - cur_score) / temp));
    if (accept) {
      current = std::move(moved);
      cur_eval = std::move(e);
      cur_score = score;
    }
  }
  return visited;
}

std::size_t pick_best_index(const std::vector<DesignPoint>& frontier,
                            const ExplorerConfig& config, const fpga::FpgaDevice& device,
                            const fpga::ResourceUsage& budget, bool* objective_met) {
  *objective_met = !frontier.empty();
  if (frontier.empty()) {
    return 0;
  }
  switch (config.objective) {
    case Objective::kMaxFps:
      return 0;  // frontier is sorted fastest-first
    case Objective::kMinResources: {
      std::size_t best = frontier.size();
      double best_cost = 0.0;
      for (std::size_t i = 0; i < frontier.size(); ++i) {
        if (frontier[i].fps + 1e-9 < config.target_fps) {
          continue;
        }
        const double cost = scalar_cost(frontier[i].resources, budget);
        if (best == frontier.size() || cost < best_cost) {
          best = i;
          best_cost = cost;
        }
      }
      if (best == frontier.size()) {
        *objective_met = false;  // target unreachable: fall back to fastest
        return 0;
      }
      return best;
    }
    case Objective::kBalanced: {
      std::size_t best = 0;
      double best_score = -1.0;
      for (std::size_t i = 0; i < frontier.size(); ++i) {
        const double pressure =
            fpga::max_utilization(fpga::utilization(frontier[i].resources, device));
        const double score = frontier[i].fps / std::max(1e-12, pressure);
        if (score > best_score) {
          best_score = score;
          best = i;
        }
      }
      return best;
    }
  }
  return 0;
}

/// Chosen indices of \p point (inverse of evaluate's folding assembly).
Chosen chosen_of(const SearchSpace& space, const DesignPoint& point) {
  Chosen chosen(space.layers.size(), 0);
  for (std::size_t li = 0; li < space.layers.size(); ++li) {
    const auto& cands = space.layers[li].candidates;
    for (std::size_t c = 0; c < cands.size(); ++c) {
      if (cands[c].folding.pe == point.folding.layers[li].pe &&
          cands[c].folding.simd == point.folding.layers[li].simd) {
        chosen[li] = static_cast<std::int32_t>(c);
        break;
      }
    }
  }
  return chosen;
}

}  // namespace

const char* objective_name(Objective objective) {
  switch (objective) {
    case Objective::kMaxFps:
      return "max-fps";
    case Objective::kMinResources:
      return "min-resources";
    case Objective::kBalanced:
      return "balanced";
  }
  return "?";
}

Objective objective_by_name(const std::string& name) {
  for (Objective o : {Objective::kMaxFps, Objective::kMinResources, Objective::kBalanced}) {
    if (name == objective_name(o)) {
      return o;
    }
  }
  throw ConfigError("unknown objective '" + name +
                    "' (max-fps | min-resources | balanced)");
}

std::vector<std::string> objective_names() {
  return {"max-fps", "min-resources", "balanced"};
}

const DesignPoint& ExplorationResult::best() const {
  require(!frontier.empty(),
          "design-space exploration found no feasible folding under the budget");
  return frontier[best_index];
}

ExplorationResult explore_geometry(const hls::CompiledModel& geometry, int weight_bits,
                                   int act_bits, const fpga::FpgaDevice& device,
                                   const ExplorerConfig& config) {
  require(config.beam_width >= 1, "beam width must be >= 1");
  require(config.anneal_iters >= 0, "anneal iterations must be >= 0");
  if (config.objective == Objective::kMinResources) {
    require(config.target_fps > 0.0, "min-resources exploration needs a target fps");
  }

  ExplorationResult result;
  result.budget = config.budget ? *config.budget
                                : fpga::device_budget(device, config.budget_fraction);
  const SearchSpace space =
      build_search_space(geometry, weight_bits, act_bits, config.variant, result.budget,
                         config.constraints, config.resource_constants, config.perf_constants);
  require(!space.layers.empty(), "model has no MVTU layers to fold");
  result.space_size = space_size(space);

  std::vector<DesignPoint> pool;
  if (result.space_size <= config.exhaustive_limit) {
    result.exhaustive = true;
    pool = enumerate_exhaustive(space, device.clock_hz, config.variant, result.budget, config,
                                &result.evaluated);
  } else {
    for (std::int64_t target : ii_targets(space, config)) {
      std::vector<DesignPoint> points =
          beam_for_target(space, target, device.clock_hz, config.variant, result.budget, config,
                          &result.evaluated);
      pool.insert(pool.end(), points.begin(), points.end());
    }
  }

  // Annealing refines the objective's incumbent (or digs for a first
  // feasible point when the sweep found none).
  std::vector<DesignPoint> frontier = pareto_filter(std::move(pool));
  bool met = false;
  Chosen start;
  if (!frontier.empty()) {
    const std::size_t incumbent =
        pick_best_index(frontier, config, device, result.budget, &met);
    start = chosen_of(space, frontier[incumbent]);
  } else {
    start.assign(space.layers.size(), 0);  // per-layer cheapest candidates
  }
  std::vector<DesignPoint> refined =
      anneal(space, start, device.clock_hz, config.variant, result.budget, config, device,
             &result.evaluated);
  frontier.insert(frontier.end(), refined.begin(), refined.end());

  result.frontier = pareto_filter(std::move(frontier));
  result.best_index =
      pick_best_index(result.frontier, config, device, result.budget, &result.objective_met);
  return result;
}

ExplorationResult explore(const nn::Model& model, const fpga::FpgaDevice& device,
                          const ExplorerConfig& config) {
  const std::vector<hls::MvtuLayerDesc> layers = hls::enumerate_mvtu_layers(model);
  require(!layers.empty(), "model has no MVTU layers to fold");
  return explore_geometry(hls::compile_geometry(model), layers.front().weight_bits,
                          layers.front().act_bits, device, config);
}

ExplorationResult explore_graph(const graph::Graph& graph, const fpga::FpgaDevice& device,
                                const ExplorerConfig& config) {
  return explore_geometry(graph::lower_geometry(graph), graph.quant().weight_bits,
                          graph.quant().act_bits, device, config);
}

std::vector<LayerReport> layer_breakdown(const SearchSpace& space, const DesignPoint& point) {
  require(space.layers.size() == point.folding.layers.size(),
          "design point does not match the search space");
  std::vector<LayerReport> out;
  out.reserve(space.layers.size());
  for (std::size_t li = 0; li < space.layers.size(); ++li) {
    const hls::LayerFolding& f = point.folding.layers[li];
    LayerReport r;
    r.name = space.layers[li].desc.name;
    r.pe = f.pe;
    r.simd = f.simd;
    for (const FoldingCandidate& c : space.layers[li].candidates) {
      if (c.folding.pe == f.pe && c.folding.simd == f.simd) {
        r.cycles = c.cycles;
        r.luts = c.resources.luts;
        r.bram18 = c.resources.bram18;
        break;
      }
    }
    r.is_bottleneck = r.cycles == point.ii_cycles;
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace adaflow::dse
