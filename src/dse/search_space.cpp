#include "adaflow/dse/search_space.hpp"

#include <algorithm>

#include "adaflow/common/error.hpp"
#include "adaflow/common/math.hpp"
#include "adaflow/common/parallel.hpp"

namespace adaflow::dse {

namespace {

/// Budget-normalized scalar cost of a stage's resources. Dimensions with a
/// zero cap (unconstrained) still contribute via the LUT scale so the cost
/// stays a total order even under partial budgets.
double scalar_cost(const fpga::ResourceUsage& r, const fpga::ResourceUsage& budget) {
  double cost = 0.0;
  cost += budget.luts > 0.0 ? r.luts / budget.luts : r.luts * 1e-6;
  cost += budget.flip_flops > 0.0 ? r.flip_flops / budget.flip_flops : r.flip_flops * 1e-6;
  cost += budget.bram18 > 0.0 ? r.bram18 / budget.bram18 : r.bram18 * 1e-3;
  cost += budget.dsp > 0.0 ? r.dsp / budget.dsp : r.dsp * 1e-3;
  return cost;
}

std::vector<std::int64_t> capped_divisors(std::int64_t value, std::int64_t cap) {
  std::vector<std::int64_t> divs = hls::divisors_of(value);
  if (cap > 0) {
    divs.erase(std::remove_if(divs.begin(), divs.end(),
                              [cap](std::int64_t d) { return d > cap; }),
               divs.end());
  }
  require(!divs.empty(), "folding caps left no legal divisor");
  return divs;
}

}  // namespace

double space_size(const SearchSpace& space) {
  double size = 1.0;
  for (const LayerSpace& layer : space.layers) {
    size *= static_cast<double>(layer.candidates.size());
  }
  return size;
}

bool prune_compatible(std::int64_t ch_out, std::int64_t pe, std::int64_t simd_next,
                      double max_granularity) {
  if (max_granularity <= 0.0) {
    return true;
  }
  const std::int64_t step = lcm_positive(pe, std::max<std::int64_t>(1, simd_next));
  return static_cast<double>(step) <= max_granularity * static_cast<double>(ch_out);
}

SearchSpace build_search_space(const hls::CompiledModel& geometry, int weight_bits, int act_bits,
                               hls::AcceleratorVariant variant,
                               const fpga::ResourceUsage& budget,
                               const SearchConstraints& constraints,
                               const fpga::ResourceModelConstants& resource_constants,
                               const perf::PerfModelConstants& perf_constants) {
  require(weight_bits > 0 && act_bits > 0, "search space needs quantized precisions");
  const bool flexible = variant == hls::AcceleratorVariant::kFlexible;

  SearchSpace space;
  space.weight_bits = weight_bits;
  space.act_bits = act_bits;

  // Folding-independent parts: every non-MVTU stage (pool, concat, upsample,
  // global-pool) sets a floor on the initiation interval and a constant
  // resource term; the top-level glue is constant.
  for (const hls::CompiledStage& stage : geometry.stages) {
    if (hls::is_mvtu_kind(stage.desc.kind)) {
      space.layers.push_back(LayerSpace{stage.desc, {}, 0});
      continue;
    }
    std::int64_t cycles = perf::stage_cycles(stage.desc, nullptr);
    if (flexible) {
      cycles = perf::flexible_stage_cycles(cycles, perf_constants);
    }
    space.pool_ii_cycles = std::max(space.pool_ii_cycles, cycles);
    space.pool_latency_cycles += cycles;
    space.fixed_overhead +=
        stage.desc.kind == hls::StageKind::kPool
            ? fpga::pool_resources(stage, act_bits, resource_constants)
            : fpga::stream_stage_resources(stage, act_bits, resource_constants);
  }
  space.fixed_overhead.luts += resource_constants.top_level_luts;
  space.fixed_overhead.flip_flops += resource_constants.top_level_luts * resource_constants.ff_per_lut;
  space.fixed_overhead.bram18 += resource_constants.top_level_bram;

  // Per-layer lattice, evaluated in parallel (layers are independent).
  parallel_for(static_cast<std::int64_t>(space.layers.size()), [&](std::int64_t li) {
    LayerSpace& layer = space.layers[static_cast<std::size_t>(li)];
    const std::vector<std::int64_t> pes = capped_divisors(layer.desc.ch_out, constraints.max_pe);
    const std::vector<std::int64_t> simds =
        capped_divisors(layer.desc.ch_in, constraints.max_simd);

    hls::CompiledStage stage;
    stage.desc = layer.desc;
    layer.candidates.reserve(pes.size() * simds.size());
    layer.min_cycles = 0;
    for (std::int64_t pe : pes) {
      for (std::int64_t simd : simds) {
        FoldingCandidate c;
        c.folding = hls::LayerFolding{pe, simd};
        c.cycles = perf::stage_cycles(layer.desc, &c.folding);
        if (flexible) {
          c.cycles = perf::flexible_stage_cycles(c.cycles, perf_constants);
        }
        c.resources = fpga::mvtu_resources(stage, c.folding, weight_bits, act_bits,
                                           resource_constants);
        c.cost = scalar_cost(c.resources, budget);
        if (layer.min_cycles == 0 || c.cycles < layer.min_cycles) {
          layer.min_cycles = c.cycles;
        }
        layer.candidates.push_back(c);
      }
    }
    // Cheapest first; ties broken on (pe, simd) so the walk order — and with
    // it every downstream frontier — is bit-reproducible.
    std::sort(layer.candidates.begin(), layer.candidates.end(),
              [](const FoldingCandidate& a, const FoldingCandidate& b) {
                if (a.cost != b.cost) {
                  return a.cost < b.cost;
                }
                if (a.folding.pe != b.folding.pe) {
                  return a.folding.pe < b.folding.pe;
                }
                return a.folding.simd < b.folding.simd;
              });
  });
  return space;
}

}  // namespace adaflow::dse
