#include "adaflow/dse/rate_planner.hpp"

#include <algorithm>
#include <cmath>

#include "adaflow/common/error.hpp"

namespace adaflow::dse {

void RatePlanConfig::validate() const {
  if (!(std::isfinite(headroom) && headroom >= 1.0)) {
    throw ConfigError("RatePlanConfig.headroom must be >= 1");
  }
  if (!(std::isfinite(clock_hz) && clock_hz > 0.0)) {
    throw ConfigError("RatePlanConfig.clock_hz must be positive");
  }
}

double sustained_fps(const nn::Model& model, const hls::FoldingConfig& folding, double clock_hz) {
  const std::vector<hls::MvtuLayerDesc> layers = hls::enumerate_mvtu_layers(model);
  require(layers.size() == folding.layers.size(),
          "folding has " + std::to_string(folding.layers.size()) + " layers, model has " +
              std::to_string(layers.size()));
  std::int64_t worst = 1;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    worst = std::max(worst, hls::mvtu_layer_cycles(layers[i], folding.layers[i]));
  }
  return clock_hz / static_cast<double>(worst);
}

std::int64_t parallelism_cost(const hls::FoldingConfig& folding) {
  std::int64_t total = 0;
  for (const hls::LayerFolding& layer : folding.layers) {
    total += layer.pe * layer.simd;
  }
  return total;
}

RateFoldingPlan plan_folding_for_rate(const nn::Model& model, double offered_fps, int devices,
                                      const RatePlanConfig& config) {
  config.validate();
  require(offered_fps > 0.0, "offered_fps must be positive");
  require(devices >= 1, "devices must be >= 1");
  RateFoldingPlan plan;
  plan.offered_fps = offered_fps;
  plan.target_fps = offered_fps / static_cast<double>(devices) * config.headroom;
  plan.folding = hls::folding_for_target_fps(model, plan.target_fps, config.clock_hz);
  plan.sustained_fps = sustained_fps(model, plan.folding, config.clock_hz);
  plan.meets_target = plan.sustained_fps >= plan.target_fps;
  plan.parallelism = parallelism_cost(plan.folding);
  return plan;
}

RateFoldingPlan plan_peak_folding(const nn::Model& model, const RatePlanConfig& config) {
  config.validate();
  RateFoldingPlan plan;
  // The greedy walk unrolls every bottleneck until no divisor remains when
  // the target is unreachable: one cycle per frame stands in for "infinite".
  plan.target_fps = config.clock_hz;
  plan.offered_fps = plan.target_fps;
  plan.folding = hls::folding_for_target_fps(model, plan.target_fps, config.clock_hz);
  plan.sustained_fps = sustained_fps(model, plan.folding, config.clock_hz);
  plan.meets_target = plan.sustained_fps >= plan.target_fps;
  plan.parallelism = parallelism_cost(plan.folding);
  return plan;
}

}  // namespace adaflow::dse
