#include "adaflow/integrity/runner.hpp"

#include <memory>
#include <utility>

#include "adaflow/common/error.hpp"
#include "adaflow/common/rng.hpp"
#include "adaflow/core/library.hpp"
#include "adaflow/edge/device_sim.hpp"
#include "adaflow/sim/event_queue.hpp"

namespace adaflow::integrity {

void IntegrityRunConfig::validate() const {
  canary.validate();
  policy.validate();
}

namespace {

/// The SingleServerDriver of server.cpp with the integrity layer wired in:
/// same arrival/poll/sample cadences, plus the canary cadence and the
/// trip -> verdict -> repair-request loop.
struct IntegrityDriver {
  const edge::WorkloadTrace& trace;
  const IntegrityRunConfig& config;
  faults::FaultInjector injector;
  IntegrityManager manager;
  Rng rng;
  sim::EventQueue queue;
  edge::DeviceSim device;
  CanaryProber prober;

  IntegrityDriver(const edge::WorkloadTrace& t, std::unique_ptr<edge::ServingPolicy> inner,
                  const core::AcceleratorLibrary& library, const IntegrityRunConfig& c,
                  const faults::FaultSchedule& schedule, std::uint64_t seed)
      : trace(t), config(c),
        // Decorrelate the injector's thinning draws from the arrival stream
        // the same way the fleet layer decorrelates per-device seeds.
        injector(schedule, seed ^ 0x9e3779b97f4a7c15ULL),
        manager(std::move(inner), library, c.policy), rng(seed),
        device(queue, manager, c.server, &injector, "server"),
        prober(queue, device, c.canary, [this](double now_s) { on_trip(now_s); }) {
    manager.set_reload_hook([this](double, bool scrub) {
      if (scrub) {
        device.note_scrub();
      }
    });
  }

  void on_trip(double now_s) {
    // Score the verdict against ground truth (detection vs false alarm),
    // then ask the policy layer for a repair reload at its next poll.
    device.note_integrity_detection();
    manager.request_repair(now_s);
  }

  void on_arrival() {
    device.offer_frame(/*count_loss=*/true);
    schedule_next_arrival();
  }

  void schedule_next_arrival() {
    double rate = trace.rate_at(queue.now());
    rate *= injector.arrival_rate_factor(queue.now());
    if (rate <= 0.0) {
      queue.schedule_in(0.05, [this] { schedule_next_arrival(); });
      return;
    }
    const double when = queue.now() + rng.exponential(rate);
    if (when <= trace.duration()) {
      queue.schedule_at(when, [this] { on_arrival(); });
    }
  }

  void on_poll() {
    device.poll();
    const double next = queue.now() + config.server.poll_interval_s;
    if (next <= trace.duration()) {
      queue.schedule_at(next, [this] { on_poll(); });
    }
  }

  void on_sample() {
    device.sample_window();
    const double next = queue.now() + config.server.sample_interval_s;
    if (next <= trace.duration() + 1e-9) {
      queue.schedule_at(next, [this] { on_sample(); });
    }
  }
};

}  // namespace

edge::RunMetrics run_integrity(const edge::WorkloadTrace& trace,
                               std::unique_ptr<edge::ServingPolicy> inner,
                               const core::AcceleratorLibrary& library,
                               const IntegrityRunConfig& config,
                               const faults::FaultSchedule& schedule, std::uint64_t seed) {
  require(inner != nullptr, "run_integrity needs a serving policy");
  config.validate();
  IntegrityDriver driver(trace, std::move(inner), library, config, schedule, seed);
  driver.device.start();

  driver.schedule_next_arrival();
  driver.queue.schedule_at(config.server.poll_interval_s, [&driver] { driver.on_poll(); });
  driver.queue.schedule_at(config.server.sample_interval_s, [&driver] { driver.on_sample(); });
  driver.prober.start(trace.duration());

  driver.queue.run_until(trace.duration());
  driver.device.finalize(trace.duration());
  return std::move(driver.device.metrics());
}

}  // namespace adaflow::integrity
