#include "adaflow/integrity/canary.hpp"

#include <utility>

#include "adaflow/common/error.hpp"

namespace adaflow::integrity {

void CanaryProberConfig::validate() const {
  require(canary_interval_s >= 0.0, "canary_interval_s must be >= 0 (0 disables probing)");
  detector.validate();
}

CanaryProber::CanaryProber(sim::EventQueue& queue, edge::DeviceSim& device,
                           CanaryProberConfig config, std::function<void(double)> on_trip)
    : queue_(queue), device_(device), config_(config), detector_(config.detector),
      on_trip_(std::move(on_trip)) {
  config_.validate();
}

void CanaryProber::start(double horizon_s) {
  if (config_.canary_interval_s <= 0.0) {
    return;
  }
  horizon_s_ = horizon_s;
  device_.set_canary_hook(
      [this](double now_s, double error) { on_canary_result(now_s, error); });
  queue_.schedule_at(config_.canary_interval_s, [this] { tick(); });
}

void CanaryProber::tick() {
  // A full queue skips the probe (offer_canary refuses) — a saturated device
  // is losing real frames already; displacing one for a probe would be a
  // worse trade, and the prober simply tries again next interval.
  device_.offer_canary();
  const double next = queue_.now() + config_.canary_interval_s;
  if (next <= horizon_s_) {
    queue_.schedule_at(next, [this] { tick(); });
  }
}

void CanaryProber::on_canary_result(double now_s, double error) {
  if (!detector_.feed(error)) {
    return;
  }
  // Re-arm BEFORE the callback: the trip handler may synchronously complete
  // further canaries (repair switches flush the service ladder).
  detector_.reset();
  ++trips_;
  if (on_trip_) {
    on_trip_(now_s);
  }
}

}  // namespace adaflow::integrity
