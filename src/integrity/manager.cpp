#include "adaflow/integrity/manager.hpp"

#include <utility>

#include "adaflow/common/error.hpp"

namespace adaflow::integrity {

void IntegrityPolicyConfig::validate() const {
  require(scrub_period_s >= 0.0, "scrub_period_s must be >= 0 (0 disables scrubbing)");
  require(repair_cooldown_s >= 0.0, "repair_cooldown_s must be >= 0");
}

void FleetIntegrityConfig::validate() const {
  require(canary_interval_s >= 0.0, "canary_interval_s must be >= 0 (0 disables probing)");
  require(repair_cooldown_s >= 0.0, "repair_cooldown_s must be >= 0");
  detector.validate();
}

IntegrityManager::IntegrityManager(std::unique_ptr<edge::ServingPolicy> inner,
                                   const core::AcceleratorLibrary& library,
                                   IntegrityPolicyConfig config)
    : inner_(std::move(inner)), library_(library), config_(config) {
  require(inner_ != nullptr, "IntegrityManager needs an inner serving policy");
  config_.validate();
}

edge::ServingMode IntegrityManager::initial_mode() {
  live_mode_ = inner_->initial_mode();
  return live_mode_;
}

edge::ServingMode IntegrityManager::flexible_mode_for(const std::string& model_version) const {
  const core::ModelVersion& v = library_.versions.at(library_.index_of(model_version));
  edge::ServingMode mode;
  mode.model_version = v.version;
  mode.accelerator = "Flexible";
  mode.fps = v.fps_flexible;
  mode.accuracy = v.accuracy;
  mode.power_busy_w = v.power_busy_flexible_w;
  mode.power_idle_w = v.power_idle_flexible_w;
  return mode;
}

/// Re-load of the LIVE mode. Repairing a Fixed variant means rewriting its
/// whole bitstream (a full reconfiguration); repairing the shared Flexible
/// overlay only rewrites its config registers, which the sub-ms fast switch
/// already does.
edge::SwitchAction IntegrityManager::reload_action() const {
  edge::SwitchAction action;
  action.target = live_mode_;
  if (live_mode_.accelerator == "Flexible") {
    const core::ModelVersion& v =
        library_.versions.at(library_.index_of(live_mode_.model_version));
    action.switch_time_s = v.flexible_switch_time_s;
    action.is_reconfiguration = false;
  } else {
    action.switch_time_s = library_.reconfig_time_s;
    action.is_reconfiguration = true;
  }
  return action;
}

void IntegrityManager::request_repair(double now_s) {
  (void)now_s;  // the cooldown is enforced at issue time, not request time
  repair_requested_ = true;
}

std::optional<edge::SwitchAction> IntegrityManager::on_poll(double now_s, double incoming_fps) {
  // The device only polls while no switch episode is active, so an
  // unresolved "ours" flag here means a crash wiped the episode without any
  // callback — clear the stale routing state.
  ours_inflight_ = false;
  fallback_issued_ = false;

  const bool cooled = now_s - last_reload_s_ >= config_.repair_cooldown_s;
  if (repair_requested_ && cooled) {
    repair_requested_ = false;
    ours_inflight_ = true;
    last_reload_s_ = now_s;
    if (on_reload_) {
      on_reload_(now_s, /*scrub=*/false);
    }
    return reload_action();
  }
  if (config_.scrub_period_s > 0.0 && now_s - last_scrub_s_ >= config_.scrub_period_s &&
      cooled) {
    last_scrub_s_ = now_s;
    ours_inflight_ = true;
    last_reload_s_ = now_s;
    if (on_reload_) {
      on_reload_(now_s, /*scrub=*/true);
    }
    return reload_action();
  }
  return inner_->on_poll(now_s, incoming_fps);
}

void IntegrityManager::on_switch_applied(double now_s, const edge::ServingMode& mode) {
  if (ours_inflight_) {
    // An integrity reload landed. A same-mode reload needs no inner
    // notification (and a scrub must not reset e.g. the Runtime Manager's
    // switch-interval clock) — but the Flexible fallback MOVES the live
    // mode, and the inner policy's live bookkeeping has to follow it.
    const bool mode_changed = mode.accelerator != live_mode_.accelerator ||
                              mode.model_version != live_mode_.model_version;
    live_mode_ = mode;
    ours_inflight_ = false;
    fallback_issued_ = false;
    if (mode_changed) {
      inner_->on_switch_applied(now_s, mode);
    }
    return;
  }
  live_mode_ = mode;
  inner_->on_switch_applied(now_s, mode);
}

std::optional<edge::SwitchAction> IntegrityManager::on_switch_failed(
    double now_s, const edge::SwitchAction& action) {
  if (!ours_inflight_) {
    return inner_->on_switch_failed(now_s, action);
  }
  if (action.is_reconfiguration && !fallback_issued_) {
    // The full reload keeps failing: fall back to the always-available
    // Flexible overlay running the same model version — cheap repair, and
    // the Flexible cross-section shrinks future upsets as a bonus.
    fallback_issued_ = true;
    edge::SwitchAction fallback;
    fallback.target = flexible_mode_for(live_mode_.model_version);
    fallback.switch_time_s =
        library_.versions.at(library_.index_of(live_mode_.model_version)).flexible_switch_time_s;
    fallback.is_reconfiguration = false;
    return fallback;
  }
  // The cheap path failed too (or was the primary and failed): stay on the
  // live mode, let the cooldown expire, and try again on fresh evidence.
  ours_inflight_ = false;
  fallback_issued_ = false;
  repair_requested_ = false;
  return std::nullopt;
}

std::optional<edge::SwitchAction> IntegrityManager::on_overload(double now_s,
                                                               double incoming_fps) {
  return inner_->on_overload(now_s, incoming_fps);
}

edge::ForecastView IntegrityManager::forecast_view() const { return inner_->forecast_view(); }

}  // namespace adaflow::integrity
