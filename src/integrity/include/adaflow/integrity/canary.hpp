#pragma once

/// \file canary.hpp
/// Canary probing: golden frames with known outputs injected through a
/// device's NORMAL service queue at a fixed cadence. The probe is honest
/// about its cost — every canary occupies a real service slot, which is the
/// throughput tax RunMetrics::integrity reports — and honest about its
/// information: the prober only sees each canary's output error, never the
/// device's ground-truth corruption flag. Errors feed the Page-Hinkley drift
/// detector; when it trips, the prober fires the caller's trip callback
/// (detection-triggered repair, quarantine) and re-arms the detector.

#include <functional>

#include "adaflow/edge/device_sim.hpp"
#include "adaflow/integrity/detector.hpp"
#include "adaflow/sim/event_queue.hpp"

namespace adaflow::integrity {

struct CanaryProberConfig {
  /// Seconds between canary injections; 0 disables probing entirely (no
  /// canaries, no detector, no trips).
  double canary_interval_s = 0.5;
  DriftDetectorConfig detector;

  /// Throws common::ConfigError naming the offending field.
  void validate() const;
};

/// Owns the probing cadence and the drift detector for ONE device. start()
/// installs itself as the device's canary hook and schedules the first
/// injection; the prober must outlive the event queue's run.
class CanaryProber {
 public:
  /// \p on_trip fires (at most once per armed episode) when the detector
  /// trips; the detector is reset right after, so a persisting corruption
  /// trips again after fresh evidence accumulates.
  CanaryProber(sim::EventQueue& queue, edge::DeviceSim& device, CanaryProberConfig config,
               std::function<void(double now_s)> on_trip);

  /// Installs the canary hook and schedules the probing cadence up to
  /// \p horizon_s. No-op when the configured interval is 0.
  void start(double horizon_s);

  DriftDetector& detector() { return detector_; }
  const DriftDetector& detector() const { return detector_; }
  std::int64_t trips() const { return trips_; }

 private:
  void tick();
  void on_canary_result(double now_s, double error);

  sim::EventQueue& queue_;
  edge::DeviceSim& device_;
  CanaryProberConfig config_;
  DriftDetector detector_;
  std::function<void(double)> on_trip_;
  double horizon_s_ = 0.0;
  std::int64_t trips_ = 0;
};

}  // namespace adaflow::integrity
