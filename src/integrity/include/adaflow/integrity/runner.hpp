#pragma once

/// \file runner.hpp
/// End-to-end single-device integrity run: a workload trace served through
/// one DeviceSim whose serving policy is wrapped by the IntegrityManager,
/// with a CanaryProber feeding the drift detector and a FaultInjector
/// delivering the pre-resolved config-upset schedule. The composition the
/// `adaflow integrity` CLI subcommand and bench_integrity drive; the fleet
/// layer wires the same pieces per device itself (src/fleet).
///
/// Replay contract: identical (trace, configs, schedule, seed) inputs replay
/// bit-identically — the only randomness is the arrival process and the
/// injector's construction-time draws.

#include <cstdint>

#include "adaflow/edge/server_types.hpp"
#include "adaflow/edge/workload.hpp"
#include "adaflow/faults/fault_injector.hpp"
#include "adaflow/integrity/canary.hpp"
#include "adaflow/integrity/manager.hpp"

namespace adaflow::core {
struct AcceleratorLibrary;
}

namespace adaflow::edge {
class ServingPolicy;
}

namespace adaflow::integrity {

struct IntegrityRunConfig {
  edge::ServerConfig server;
  /// canary.canary_interval_s = 0 disables probing (and detection).
  CanaryProberConfig canary;
  /// policy.scrub_period_s = 0 disables blind scrubbing. With both channels
  /// off the run degenerates to the unprotected baseline (zero overhead).
  IntegrityPolicyConfig policy;

  /// Throws common::ConfigError naming the offending field.
  void validate() const;
};

/// Runs \p trace against \p inner (takes ownership; wrapped in an
/// IntegrityManager over \p library) under \p schedule. The detection wiring:
/// canary results feed the drift detector; a trip scores the verdict against
/// device ground truth and requests a repair reload; scrub/repair reloads
/// ride the supervised-switch path and clear the corruption on completion.
edge::RunMetrics run_integrity(const edge::WorkloadTrace& trace,
                               std::unique_ptr<edge::ServingPolicy> inner,
                               const core::AcceleratorLibrary& library,
                               const IntegrityRunConfig& config,
                               const faults::FaultSchedule& schedule, std::uint64_t seed);

}  // namespace adaflow::integrity
