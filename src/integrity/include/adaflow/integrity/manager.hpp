#pragma once

/// \file manager.hpp
/// The integrity repair policy, layered over any serving policy as a
/// decorator. Two repair channels, both riding the device's existing
/// supervised-switch machinery (timeout / bounded retry / fallback):
///
///  - Blind periodic scrubbing: every scrub_period_s, re-load the live
///    configuration whether or not anything is wrong. Repairs corruption the
///    canaries never see, at a fixed reconfiguration tax per period.
///  - Detection-triggered repair: request_repair() (wired to the canary
///    prober's trip callback) re-loads the live configuration at the next
///    poll, paying the tax only when evidence says the fabric is corrupt.
///
/// A repair of a Fixed variant is a full reconfiguration; a repair of the
/// shared Flexible overlay only rewrites its config registers via the sub-ms
/// fast switch. When a full reload keeps failing, the manager answers the
/// failure callback with the Flexible fast switch on the same model version —
/// the same always-available safety net the Runtime Manager uses.
///
/// Everything else forwards to the wrapped policy untouched; with scrubbing
/// disabled and no repair requests the decorator is fully transparent.

#include <functional>
#include <memory>
#include <optional>

#include "adaflow/core/library.hpp"
#include "adaflow/edge/policy.hpp"
#include "adaflow/integrity/detector.hpp"

namespace adaflow::integrity {

struct IntegrityPolicyConfig {
  /// Blind scrub period; 0 disables periodic scrubbing.
  double scrub_period_s = 0.0;
  /// Minimum gap between integrity-issued reloads (scrub or repair), so a
  /// flapping detector cannot hammer the PR controller.
  double repair_cooldown_s = 1.0;

  /// Throws common::ConfigError naming the offending field.
  void validate() const;
};

/// Fleet-level integrity configuration (consumed by fleet::FleetConfig):
/// per-device canary probing + drift detection, detection-triggered repair
/// reloads, and hand-off of confirmed-corrupt devices to the fleet's
/// quarantine/drain/re-dispatch machinery.
struct FleetIntegrityConfig {
  bool enabled = false;
  /// Seconds between canary injections per device; 0 disables probing (and
  /// with it detection — enabled=true then only keeps the accounting live).
  double canary_interval_s = 0.5;
  DriftDetectorConfig detector;
  /// On a detector trip, hand the device to the health layer's quarantine
  /// (drains its queue for re-dispatch and gates re-entry on probes).
  /// Requires FleetConfig::health.enabled.
  bool quarantine_on_detect = true;
  /// Minimum gap between detection-triggered repair reloads per device.
  double repair_cooldown_s = 1.0;

  /// Throws common::ConfigError naming the offending field.
  void validate() const;
};

class IntegrityManager final : public edge::ServingPolicy {
 public:
  /// \p library must outlive the manager (it prices the reload actions and
  /// resolves the Flexible fallback operating points).
  IntegrityManager(std::unique_ptr<edge::ServingPolicy> inner,
                   const core::AcceleratorLibrary& library, IntegrityPolicyConfig config);

  edge::ServingMode initial_mode() override;
  std::optional<edge::SwitchAction> on_poll(double now_s, double incoming_fps) override;
  void on_switch_applied(double now_s, const edge::ServingMode& mode) override;
  std::optional<edge::SwitchAction> on_switch_failed(double now_s,
                                                     const edge::SwitchAction& action) override;
  std::optional<edge::SwitchAction> on_overload(double now_s, double incoming_fps) override;
  edge::ForecastView forecast_view() const override;

  /// The detection channel: re-load the live configuration at the next poll
  /// (subject to the repair cooldown). Wired to the canary prober's trip.
  void request_repair(double now_s);
  bool repair_pending() const { return repair_requested_; }

  /// Fires whenever the manager issues an integrity reload; \p scrub is true
  /// for the blind periodic channel, false for detection-triggered repairs.
  /// The driver wires this to DeviceSim::note_scrub() for the accounting.
  void set_reload_hook(std::function<void(double now_s, bool scrub)> fn) {
    on_reload_ = std::move(fn);
  }

  edge::ServingPolicy& inner() { return *inner_; }

 private:
  edge::SwitchAction reload_action() const;
  edge::ServingMode flexible_mode_for(const std::string& model_version) const;

  std::unique_ptr<edge::ServingPolicy> inner_;
  const core::AcceleratorLibrary& library_;
  IntegrityPolicyConfig config_;
  std::function<void(double, bool)> on_reload_;

  edge::ServingMode live_mode_;
  bool repair_requested_ = false;
  bool ours_inflight_ = false;      ///< the unresolved switch is an integrity reload
  bool fallback_issued_ = false;    ///< its Flexible fallback is already in play
  double last_scrub_s_ = 0.0;
  double last_reload_s_ = -1e18;    ///< cooldown reference (issue time)
};

}  // namespace adaflow::integrity
