#pragma once

/// \file detector.hpp
/// Page-Hinkley (one-sided CUSUM) drift detector over the canary error
/// stream. A clean fabric produces canary errors of 0; a configuration upset
/// durably shifts the stream's mean upward. The detector accumulates the
/// deviation of each sample above a small allowance and trips when the
/// accumulated evidence since its running minimum exceeds a threshold:
///
///   m   += error - epsilon          (evidence walk)
///   m*   = min(m*, m)               (running minimum)
///   trip = (m - m*) > threshold
///
/// epsilon sets the tolerated noise floor (transient degrade windows, sensor
/// jitter); threshold trades false alarms against detection latency: a lower
/// threshold trips on fewer corrupted canaries (faster detection) but lets
/// benign noise bursts through more easily. Both knobs are exercised by the
/// canary-rate sweep in bench_integrity.

#include <cstdint>

namespace adaflow::integrity {

struct DriftDetectorConfig {
  /// Per-sample error allowance: deviations at or below this add no
  /// evidence. Must be >= 0.
  double epsilon = 0.02;
  /// Evidence level that trips the detector. Must be > 0. With a per-upset
  /// accuracy penalty p and allowance epsilon, a corrupted stream trips
  /// after ceil(threshold / (p - epsilon)) canaries.
  double threshold = 0.10;

  /// Throws common::ConfigError naming the offending field.
  void validate() const;
};

class DriftDetector {
 public:
  explicit DriftDetector(DriftDetectorConfig config = {});

  /// Feeds one canary error sample; returns true when the test trips. A
  /// tripped detector keeps returning true until reset() — callers reset it
  /// after acting on the trip so the next corruption episode is scored
  /// independently.
  bool feed(double error);

  /// Clears all accumulated evidence (post-repair re-arm).
  void reset();

  bool tripped() const { return tripped_; }
  std::int64_t samples() const { return samples_; }
  /// Current evidence above the running minimum (the tripping statistic).
  double statistic() const { return m_ - min_m_; }
  const DriftDetectorConfig& config() const { return config_; }

 private:
  DriftDetectorConfig config_;
  double m_ = 0.0;
  double min_m_ = 0.0;
  std::int64_t samples_ = 0;
  bool tripped_ = false;
};

}  // namespace adaflow::integrity
