#include "adaflow/integrity/detector.hpp"

#include <algorithm>

#include "adaflow/common/error.hpp"

namespace adaflow::integrity {

void DriftDetectorConfig::validate() const {
  require(epsilon >= 0.0, "drift detector epsilon must be >= 0");
  require(threshold > 0.0, "drift detector threshold must be > 0");
}

DriftDetector::DriftDetector(DriftDetectorConfig config) : config_(config) {
  config_.validate();
}

bool DriftDetector::feed(double error) {
  ++samples_;
  m_ += error - config_.epsilon;
  min_m_ = std::min(min_m_, m_);
  if (m_ - min_m_ > config_.threshold) {
    tripped_ = true;
  }
  return tripped_;
}

void DriftDetector::reset() {
  m_ = 0.0;
  min_m_ = 0.0;
  tripped_ = false;
  // samples_ keeps counting across resets: it is the lifetime feed count.
}

}  // namespace adaflow::integrity
