#include "adaflow/report/csv.hpp"

#include <filesystem>
#include <fstream>

#include "adaflow/common/error.hpp"
#include "adaflow/common/strings.hpp"

namespace adaflow::report {

CsvWriter::CsvWriter(std::vector<std::string> header) : header_(std::move(header)) {
  require(!header_.empty(), "csv header must not be empty");
}

void CsvWriter::add_row(std::vector<std::string> cells) {
  require(cells.size() == header_.size(), "csv row arity mismatch");
  rows_.push_back(std::move(cells));
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    return cell;
  }
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') {
      out += "\"\"";
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

std::string CsvWriter::render() const {
  std::string out;
  auto emit = [&out](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      out += escape(row[i]);
      out += (i + 1 == row.size()) ? "\n" : ",";
    }
  };
  emit(header_);
  for (const auto& row : rows_) {
    emit(row);
  }
  return out;
}

void CsvWriter::write(const std::string& path) const {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path());
  }
  std::ofstream out(path);
  require(out.good(), "cannot write " + path);
  out << render();
  require(out.good(), "error writing " + path);
}

void write_series_csv(const std::string& path,
                      const std::vector<std::pair<std::string, sim::TimeSeries>>& series) {
  require(!series.empty(), "no series to export");
  std::vector<std::string> header{"time_s"};
  std::size_t rows = series.front().second.values.size();
  for (const auto& [name, s] : series) {
    header.push_back(name);
    rows = std::min(rows, s.values.size());
  }
  CsvWriter csv(std::move(header));
  for (std::size_t i = 0; i < rows; ++i) {
    std::vector<std::string> row{format_double(series.front().second.time_of(i), 3)};
    for (const auto& [name, s] : series) {
      (void)name;
      row.push_back(format_double(s.values[i], 6));
    }
    csv.add_row(std::move(row));
  }
  csv.write(path);
}

}  // namespace adaflow::report
