#pragma once

/// \file gnuplot.hpp
/// Emits gnuplot scripts that plot the CSVs written by csv.hpp, one per
/// paper figure. The scripts are plain text artifacts — running gnuplot is
/// left to the user (it is not a build dependency).

#include <string>
#include <vector>

namespace adaflow::report {

/// One curve of a figure: CSV column (1-based, after the time column) and a
/// legend label.
struct Curve {
  int column = 2;
  std::string title;
};

struct FigureSpec {
  std::string output_png;  ///< e.g. "fig6a.png"
  std::string csv_path;    ///< data file the curves read from
  std::string title;
  std::string xlabel = "time [s]";
  std::string ylabel;
  std::vector<Curve> curves;
};

/// Renders a gnuplot script for one figure.
std::string render_gnuplot(const FigureSpec& spec);

/// Writes the script next to the CSV (path = spec.csv_path + ".gp" unless
/// overridden).
void write_gnuplot(const FigureSpec& spec, const std::string& path);

}  // namespace adaflow::report
