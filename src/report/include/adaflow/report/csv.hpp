#pragma once

/// \file csv.hpp
/// CSV export for bench results — time series and tables — so the paper's
/// figures can be regenerated with any plotting tool (a matching gnuplot
/// script emitter lives in gnuplot.hpp).

#include <string>
#include <vector>

#include "adaflow/sim/stats.hpp"

namespace adaflow::report {

/// Accumulates rows of numeric/text cells and writes RFC-4180-ish CSV
/// (quotes cells containing separators or quotes).
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Renders the CSV document.
  std::string render() const;

  /// Writes to \p path, creating parent directories.
  void write(const std::string& path) const;

  std::size_t row_count() const { return rows_.size(); }

  /// Escapes one cell per CSV quoting rules.
  static std::string escape(const std::string& cell);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Writes aligned time series to CSV: a time column plus one value column
/// per named series (all series must share the interval; rows are truncated
/// to the shortest).
void write_series_csv(const std::string& path,
                      const std::vector<std::pair<std::string, sim::TimeSeries>>& series);

}  // namespace adaflow::report
