#include "adaflow/report/gnuplot.hpp"

#include <filesystem>
#include <fstream>

#include "adaflow/common/error.hpp"

namespace adaflow::report {

std::string render_gnuplot(const FigureSpec& spec) {
  require(!spec.curves.empty(), "figure needs at least one curve");
  std::string out;
  out += "set terminal pngcairo size 900,540\n";
  out += "set output '" + spec.output_png + "'\n";
  out += "set datafile separator ','\n";
  out += "set key outside right\n";
  out += "set grid\n";
  out += "set title '" + spec.title + "'\n";
  out += "set xlabel '" + spec.xlabel + "'\n";
  out += "set ylabel '" + spec.ylabel + "'\n";
  out += "plot ";
  for (std::size_t i = 0; i < spec.curves.size(); ++i) {
    const Curve& c = spec.curves[i];
    if (i != 0) {
      out += ", \\\n     ";
    }
    out += "'" + spec.csv_path + "' using 1:" + std::to_string(c.column) +
           " with lines lw 2 title '" + c.title + "'";
  }
  out += "\n";
  return out;
}

void write_gnuplot(const FigureSpec& spec, const std::string& path) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path());
  }
  std::ofstream out(path);
  require(out.good(), "cannot write " + path);
  out << render_gnuplot(spec);
}

}  // namespace adaflow::report
