#include "adaflow/fleet/routing.hpp"

#include "adaflow/common/error.hpp"
#include "adaflow/common/strings.hpp"

namespace adaflow::fleet {

namespace {

/// Effective drain time used for load comparison.
double load_of(const DeviceStatus& d, double switching_penalty_s) {
  return d.backlog_s + (d.switching ? switching_penalty_s : 0.0);
}

}  // namespace

std::size_t RoundRobinRouter::route(double, const std::vector<DeviceStatus>& devices) {
  require(!devices.empty(), "route called with no devices");
  const std::size_t n = devices.size();
  for (std::size_t step = 0; step < n; ++step) {
    const std::size_t idx = (cursor_ + step) % n;
    if (devices[idx].eligible) {
      cursor_ = idx + 1;  // next frame starts after the chosen device
      return idx;
    }
  }
  throw ConfigError("route called with no eligible device");
}

std::size_t LeastLoadedRouter::route(double, const std::vector<DeviceStatus>& devices) {
  require(!devices.empty(), "route called with no devices");
  std::size_t best = devices.size();
  double best_load = 0.0;
  for (std::size_t i = 0; i < devices.size(); ++i) {
    if (!devices[i].eligible) {
      continue;
    }
    const double load = load_of(devices[i], switching_penalty_s_);
    // Ties break toward fewer queued frames, then the lower index, so the
    // choice is deterministic regardless of float noise.
    if (best == devices.size() || load < best_load ||
        (load == best_load && devices[i].queued < devices[best].queued)) {
      best = i;
      best_load = load;
    }
  }
  require(best != devices.size(), "route called with no eligible device");
  return best;
}

std::size_t AccuracyAwareRouter::route(double now_s, const std::vector<DeviceStatus>& devices) {
  require(!devices.empty(), "route called with no devices");
  std::size_t best = devices.size();
  for (std::size_t i = 0; i < devices.size(); ++i) {
    const DeviceStatus& d = devices[i];
    if (!d.eligible || d.switching || d.backlog_s > headroom_s_) {
      continue;
    }
    if (best == devices.size() || d.accuracy > devices[best].accuracy) {
      best = i;
    }
  }
  if (best != devices.size()) {
    return best;
  }
  // Everyone is loaded (or switching): losing frames costs more QoE than
  // serving them on a less accurate model.
  return least_loaded_.route(now_s, devices);
}

const std::vector<std::string>& router_names() {
  static const std::vector<std::string> names = {"round-robin", "least-loaded",
                                                 "accuracy-aware"};
  return names;
}

std::unique_ptr<RoutingPolicy> make_router(const std::string& name) {
  if (name == "round-robin") {
    return std::make_unique<RoundRobinRouter>();
  }
  if (name == "least-loaded") {
    return std::make_unique<LeastLoadedRouter>();
  }
  if (name == "accuracy-aware") {
    return std::make_unique<AccuracyAwareRouter>();
  }
  throw NotFoundError("unknown router '" + name + "' (valid: " + join(router_names(), ", ") +
                      ")");
}

}  // namespace adaflow::fleet
