#pragma once

/// \file health.hpp
/// Per-device health inference for the fleet dispatcher: a three-state
/// circuit breaker (healthy -> suspect -> quarantined, with half-open
/// probing back to healthy) driven purely from observable signals —
/// cumulative completion counts versus wall-clock — never from the
/// simulator's ground-truth fault flags. A crashed or hung device looks like
/// "work waiting, no completions"; a degraded device looks like "completions
/// far below the advertised mode FPS". That is all a real dispatcher gets,
/// so it is all the monitor uses.
///
/// The HealthMonitor is deliberately a pure logic class: the fleet layer
/// feeds it one Observation per device per tick and acts on the returned
/// HealthAction (drain + re-route on quarantine, send a probe frame when
/// requested, re-include on rejoin). Keeping the event queue out makes the
/// state machine unit-testable with hand-written tick sequences.

#include <cstdint>
#include <deque>
#include <vector>

namespace adaflow::fleet {

/// Dispatcher-side resilience knobs. Disabled by default: the PR 2 fleet
/// behaves exactly as before unless health monitoring is switched on.
struct HealthConfig {
  bool enabled = false;
  /// Monitor cadence; every tick observes every device.
  double tick_interval_s = 0.25;
  /// Work waiting this long with zero completions marks the device suspect.
  double suspect_timeout_s = 1.0;
  /// Suspect for this long without recovering escalates to quarantined.
  double quarantine_timeout_s = 1.0;
  /// Spacing between half-open probes of a quarantined device.
  double probe_interval_s = 1.0;
  /// A probe frame must complete within this or the probe counts as failed.
  double probe_timeout_s = 1.0;
  /// Consecutive successful probes required before the device rejoins.
  int rejoin_probes = 2;
  /// Completion rate below (mode FPS / this factor) while continuously busy
  /// marks the device suspect — the degraded-service detector. A factor of 3
  /// tolerates scheduling noise but catches strong latency multipliers.
  double degrade_rate_factor = 3.0;
  /// Window over which the completion rate is measured.
  double rate_window_s = 2.0;
  /// When > 0: an ingress-dispatched frame still waiting in a device queue
  /// after this long is hedged — pulled back and re-routed to another
  /// eligible device. 0 disables hedging.
  double hedge_budget_s = 0.0;
  /// Hedge by duplication instead of migration: the slow copy stays queued
  /// and a duplicate is dispatched to another eligible device; the first
  /// completion wins and the loser's completion is discarded (it counts as
  /// hedge_wasted, never toward delivered frames, QoE, or latency). Off by
  /// default — migration hedging is the PR 5 behaviour. With duplication on,
  /// caller-assigned frame tags must be >= 0 (the engine reserves negative
  /// tags to dedupe anonymous traffic).
  bool hedge_duplicate = false;

  /// Throws ConfigError naming the offending field.
  void validate() const;
};

enum class HealthState {
  kHealthy,      ///< full member of the routing set
  kSuspect,      ///< progress stalled; watching before acting
  kQuarantined,  ///< out of rotation, queue drained; waiting to probe
  kProbing,      ///< half-open: at most one probe frame in flight
};

const char* health_state_name(HealthState state);

/// What the dispatcher should do after one observation of one device.
struct HealthAction {
  bool quarantine = false;    ///< transitioned into quarantine: drain the queue
  bool want_probe = false;    ///< route one (and only one) probe frame here
  bool probe_failed = false;  ///< probe timed out: reclaim the swallowed frame
  bool rejoin = false;        ///< recovered: re-include in the routing set
};

class HealthMonitor {
 public:
  /// One device's observable signals at a tick instant.
  struct Observation {
    std::int64_t processed = 0;  ///< cumulative frames completed
    bool has_work = false;       ///< frames queued or in service
    /// Coordinator drain/reconfigure or a switch ladder in flight: expected
    /// downtime, not sickness — progress timers freeze instead of accusing.
    bool in_maintenance = false;
    double nominal_fps = 0.0;  ///< advertised FPS of the current mode
  };

  HealthMonitor(const HealthConfig& config, std::size_t device_count);

  /// Feed one tick's observation of device \p i at time \p now. Ticks must
  /// be fed in nondecreasing time order per device.
  HealthAction observe(std::size_t i, double now, const Observation& obs);

  /// The dispatcher managed to route a probe frame to device \p i (after a
  /// want_probe). Arms the probe timeout; \p processed_at_dispatch is the
  /// device's cumulative completion count at the moment of dispatch.
  void on_probe_dispatched(std::size_t i, double now, std::int64_t processed_at_dispatch);

  /// External verdict (the integrity layer's drift detector confirming a
  /// silently-corrupt device): quarantine \p i immediately, bypassing the
  /// progress-based escalation — silent corruption completes frames at full
  /// rate, so the stall/rate checks can never catch it. Returns true when
  /// the device transitioned (the caller then drains its queue, exactly as
  /// on an observe() quarantine); false when it was already out of rotation.
  bool force_quarantine(std::size_t i, double now);

  HealthState state(std::size_t i) const { return devices_[i].state; }
  /// True while the device is out of the normal routing set (quarantined or
  /// probing). Probing devices take probe traffic only.
  bool out_of_rotation(std::size_t i) const {
    return devices_[i].state == HealthState::kQuarantined ||
           devices_[i].state == HealthState::kProbing;
  }
  std::int64_t quarantines(std::size_t i) const { return devices_[i].quarantines; }
  std::int64_t rejoins(std::size_t i) const { return devices_[i].rejoins; }

 private:
  struct DeviceHealth {
    HealthState state = HealthState::kHealthy;
    std::int64_t last_processed = 0;
    double last_progress_s = 0.0;  ///< last completion / last idle instant
    double suspect_since_s = 0.0;
    double last_probe_s = -1e18;
    bool probe_in_flight = false;
    double probe_sent_s = 0.0;
    std::int64_t probe_baseline = 0;
    int probe_successes = 0;
    std::int64_t quarantines = 0;
    std::int64_t rejoins = 0;
    /// (time, processed) samples over continuously-busy ticks, for the
    /// completion-rate (degrade) check. Cleared on idle or maintenance.
    std::deque<std::pair<double, std::int64_t>> rate_history;
  };

  bool rate_too_slow(DeviceHealth& d, double now, const Observation& obs);

  HealthConfig config_;
  std::vector<DeviceHealth> devices_;
};

}  // namespace adaflow::fleet
