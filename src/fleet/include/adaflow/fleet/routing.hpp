#pragma once

/// \file routing.hpp
/// Pluggable frame-routing policies for the fleet dispatcher: given a
/// snapshot of every device's load and operating mode, pick the device that
/// takes the frame arriving now.
///
/// The dispatcher marks a device `eligible` when it is accepting traffic
/// (not drained by the coordinator) and its bounded queue has headroom;
/// routers only ever return an eligible index, and the dispatcher falls back
/// to its ingress queue when nothing is eligible.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace adaflow::fleet {

/// Load/mode snapshot of one device at routing time.
struct DeviceStatus {
  bool eligible = false;  ///< accepting traffic and has queue headroom
  std::int64_t queued = 0;
  std::int64_t capacity = 0;
  bool busy = false;       ///< a frame is in service
  bool switching = false;  ///< a mode switch / recovery blocks service
  double fps = 0.0;        ///< current mode's service rate
  double accuracy = 0.0;   ///< current mode's model accuracy
  double backlog_s = 0.0;  ///< (queued + in-flight) / fps drain estimate
};

class RoutingPolicy {
 public:
  /// route_tagged may return this to decline the frame (no acceptable device
  /// for its class right now); the dispatcher then parks it at ingress.
  static constexpr std::size_t kDecline = static_cast<std::size_t>(-1);

  virtual ~RoutingPolicy() = default;
  virtual std::string name() const = 0;

  /// Picks the device for one frame arriving at \p now_s. The dispatcher
  /// guarantees at least one status is eligible; implementations must return
  /// the index of an eligible device.
  virtual std::size_t route(double now_s, const std::vector<DeviceStatus>& devices) = 0;

  /// Tag-aware variant the dispatcher actually calls: class-based routers
  /// (the tenant partition router) see the frame's tag and may return
  /// kDecline to keep the frame waiting at ingress even though some device
  /// is eligible (hard partitioning). The default ignores the tag and never
  /// declines, so every existing router keeps its exact behaviour.
  virtual std::size_t route_tagged(double now_s, std::int64_t tag,
                                   const std::vector<DeviceStatus>& devices) {
    (void)tag;
    return route(now_s, devices);
  }
};

/// Cycles through the devices in index order, skipping ineligible ones.
/// Blind to load and heterogeneity — the baseline the smarter routers beat.
class RoundRobinRouter final : public RoutingPolicy {
 public:
  std::string name() const override { return "round-robin"; }
  std::size_t route(double now_s, const std::vector<DeviceStatus>& devices) override;

 private:
  std::size_t cursor_ = 0;
};

/// Join-shortest-queue, weighted by service rate: picks the eligible device
/// with the smallest backlog drain time, so a 2000-FPS device absorbs more
/// traffic than a 500-FPS one. A device mid-switch gets a constant penalty
/// (its queue will not move until the switch completes).
class LeastLoadedRouter final : public RoutingPolicy {
 public:
  explicit LeastLoadedRouter(double switching_penalty_s = 0.1)
      : switching_penalty_s_(switching_penalty_s) {}
  std::string name() const override { return "least-loaded"; }
  std::size_t route(double now_s, const std::vector<DeviceStatus>& devices) override;

 private:
  double switching_penalty_s_;
};

/// Prefers the most accurate currently-loaded model among devices with
/// backlog headroom (QoE counts accuracy per processed frame); once every
/// device is loaded past the headroom bound it degrades to the least-loaded
/// rule, because a lost frame costs more QoE than a less accurate one.
class AccuracyAwareRouter final : public RoutingPolicy {
 public:
  explicit AccuracyAwareRouter(double headroom_s = 0.05, double switching_penalty_s = 0.1)
      : headroom_s_(headroom_s), least_loaded_(switching_penalty_s) {}
  std::string name() const override { return "accuracy-aware"; }
  std::size_t route(double now_s, const std::vector<DeviceStatus>& devices) override;

 private:
  double headroom_s_;
  LeastLoadedRouter least_loaded_;
};

/// Router registry: the names accepted by make_router (and the CLI/bench
/// `--router` flag), in presentation order.
const std::vector<std::string>& router_names();

/// Builds a router by name; throws NotFoundError listing the valid names.
std::unique_ptr<RoutingPolicy> make_router(const std::string& name);

}  // namespace adaflow::fleet
