#pragma once

/// \file engine.hpp
/// The fleet's dispatcher/coordinator/health core as a reusable,
/// externally-driven component.
///
/// FleetEngine is the cluster simulation of fleet.cpp with the workload
/// pulled out — the same extraction DeviceSim is of the single server. It
/// owns the N DeviceSims, the bounded ingress queue, the RoutingPolicy, the
/// HealthMonitor circuit breaker, and the drain-and-reconfigure coordinator,
/// but frames are delivered from the outside through offer_frame() on a
/// shared sim::EventQueue. run_fleet() wraps exactly one engine behind a
/// Poisson arrival process; the ingest pipeline (src/ingest) places a
/// session/network/decode front-end ahead of the same engine and feeds it
/// tagged frames, so capture->result latency survives hedges, quarantine
/// drains, and re-dispatch.
///
/// Frame identity: every frame may carry an opaque int64 tag
/// (edge::DeviceSim::kNoTag for anonymous traffic). A tagged frame reports
/// back through set_frame_hooks exactly once — done (with delivered
/// accuracy) or lost (destroyed inside a device, or shed when a re-dispatch
/// found the ingress queue full). A frame shed at arrival is reported by the
/// offer_frame() return value instead, never through the hooks.

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "adaflow/edge/device_sim.hpp"
#include "adaflow/fleet/fleet.hpp"
#include "adaflow/integrity/detector.hpp"

namespace adaflow::fleet {

/// Scheduling discipline of the dispatcher's bounded ingress queue. The
/// engine pushes every frame that found no device, pops in whatever order
/// the implementation decides (FIFO by default, weighted-fair in the
/// multi-tenant scheduler), and puts a frame back when no device would take
/// it. Implementations own their capacity policy: push() returning false
/// means "full for this frame's class" and the engine sheds the frame.
class IngressQueue {
 public:
  virtual ~IngressQueue() = default;
  virtual bool empty() const = 0;
  virtual std::size_t size() const = 0;
  /// Admit one waiting frame; false when full (the caller sheds it).
  virtual bool push(std::int64_t tag) = 0;
  /// Removes and returns the next frame in scheduling order. Only called on
  /// a non-empty queue.
  virtual std::int64_t pop() = 0;
  /// Puts back the frame pop() just returned (no device would take it). It
  /// must keep its place: the next pop returns it again unless a
  /// higher-priority frame arrived in between.
  virtual void unpop(std::int64_t tag) = 0;
};

/// The default bounded FIFO ingress — exactly the pre-tenant dispatcher
/// queue semantics (push_back / pop_front / put-back at the front).
class FifoIngress final : public IngressQueue {
 public:
  explicit FifoIngress(std::int64_t capacity) : capacity_(capacity) {}
  bool empty() const override { return frames_.empty(); }
  std::size_t size() const override { return frames_.size(); }
  bool push(std::int64_t tag) override {
    if (static_cast<std::int64_t>(frames_.size()) >= capacity_) {
      return false;
    }
    frames_.push_back(tag);
    return true;
  }
  std::int64_t pop() override {
    const std::int64_t tag = frames_.front();
    frames_.pop_front();
    return tag;
  }
  void unpop(std::int64_t tag) override { frames_.push_front(tag); }

 private:
  std::int64_t capacity_;
  std::deque<std::int64_t> frames_;
};

/// The Fixed-Pruning operating point of one library version (what a pinned
/// device runs, what the coordinator reconfigures to, and what the ingest
/// brownout controller downgrades to).
edge::ServingMode fixed_mode_for(const core::AcceleratorLibrary& library, std::size_t version);

/// Index of \p version_name in \p library, or versions.size() when the
/// device currently runs a mode from a different library.
std::size_t find_version(const core::AcceleratorLibrary& library,
                         const std::string& version_name);

/// Per-device injector seed: splitmix-style spreading of the fleet seed so
/// neighbouring devices get unrelated streams.
std::uint64_t device_seed(std::uint64_t fleet_seed, std::size_t index);

class FleetEngine {
 public:
  /// What happened to a frame offered to the ingress.
  enum class Admit {
    kDispatched,  ///< routed to a device queue immediately
    kQueued,      ///< waiting at the bounded ingress queue
    kShed,        ///< ingress full: the frame is lost (metrics.ingress_lost)
  };

  /// \p queue, \p library, \p config, and \p router must outlive the engine.
  /// \p horizon_s bounds the self-rescheduling cadence events (health,
  /// coordinator, sampling) — pass the run duration. \p seed derives the
  /// per-device fault-injector seeds; the engine itself draws no randomness.
  FleetEngine(sim::EventQueue& queue, const core::AcceleratorLibrary& library,
              const FleetConfig& config, RoutingPolicy& router, std::uint64_t seed,
              double horizon_s);
  ~FleetEngine();

  FleetEngine(const FleetEngine&) = delete;
  FleetEngine& operator=(const FleetEngine&) = delete;

  /// Starts every device and schedules the cadence events. Call once, at the
  /// simulation time the run begins (normally t=0), before any offer_frame.
  void start();

  /// One frame reaches the dispatcher at queue.now(): routed immediately
  /// when any device is accepting with headroom, parked at the bounded
  /// ingress queue otherwise, shed when that queue is full.
  Admit offer_frame(std::int64_t tag = edge::DeviceSim::kNoTag);

  /// Per-frame outcome hooks for tagged frames (see file comment). The done
  /// hook receives the accuracy the serving device delivered (degrade
  /// penalties applied) — the ingest pipeline turns it into QoE and
  /// capture->result latency.
  void set_frame_hooks(std::function<void(std::int64_t tag, double accuracy)> on_done,
                       std::function<void(std::int64_t tag)> on_lost);

  /// Replaces the default bounded-FIFO ingress with a caller-owned
  /// scheduling discipline (the multi-tenant WFQ). Call before start();
  /// \p ingress must be empty and outlive the engine.
  void set_ingress_queue(IngressQueue& ingress);

  /// Re-attempts dispatch of waiting ingress frames. Every internal path
  /// that frees headroom already pumps; external callers (the tenant
  /// coordinator after re-partitioning) use this to wake a queue whose
  /// frames were declined by the router earlier.
  void pump();

  /// Final per-device accounting at \p duration_s; moves the metrics out.
  /// The engine is spent afterwards.
  FleetMetrics finalize(double duration_s);

  // --- introspection / external control (ingest brownout controller) ------
  std::size_t device_count() const { return devices_.size(); }
  const edge::DeviceSim& device(std::size_t i) const { return *devices_[i]; }
  /// Library device \p i serves from (its own, or the fleet default).
  const core::AcceleratorLibrary& device_library(std::size_t i) const;
  std::int64_t ingress_backlog() const { return static_cast<std::int64_t>(ingress_->size()); }
  /// Worst per-device backlog drain estimate right now [s].
  double worst_backlog_seconds() const;
  /// Externally commanded switch on device \p i — the same validated,
  /// fault-injected, timeout/retry-laddered path the coordinator uses.
  /// Callers gate on device(i).switch_in_flight().
  void command_device_switch(std::size_t i, const edge::SwitchAction& action);
  /// Live counters (finalize() gives the complete picture).
  const FleetMetrics& metrics() const { return metrics_; }

 private:
  static constexpr std::size_t kNoExclude = static_cast<std::size_t>(-1);

  bool excluded(std::size_t i) const;
  bool try_dispatch(std::int64_t tag, std::size_t exclude = kNoExclude);
  bool try_probe_dispatch(std::int64_t tag);
  void drain_ingress();
  void on_device_headroom(std::size_t i);
  /// Central frame-outcome funnel: dedupes duplicate-hedge copies, then
  /// forwards caller tags to the user hooks. Every completion/loss path
  /// (device hooks, re-park sheds) reports through here.
  void frame_done(std::int64_t tag, double accuracy);
  void frame_lost(std::int64_t tag);
  /// Dispatches duplicate copies of frames stuck past the hedge budget
  /// (hedge_duplicate mode; health_tick calls it each tick).
  void hedge_duplicates(double now);
  /// A re-dispatched frame (quarantine drain, probe reclaim, hedge) looks
  /// for a new home: device first, then ingress, else it is shed — and a
  /// shed tagged frame fires the lost hook (its owner must hear of it).
  void redispatch_or_park(std::int64_t tag, std::size_t exclude);
  void quarantine_drain(std::size_t i);
  bool any_other_eligible(std::size_t i) const;
  void health_tick();
  /// Offers one golden canary frame to every device (integrity layer
  /// cadence); full queues skip their probe this round.
  void canary_tick();
  /// A canary completed on device \p i with \p error against the golden
  /// answer: feeds that device's drift detector, and on a trip scores the
  /// verdict, issues the detection-triggered reload (cooldown-gated), and
  /// optionally force-quarantines the device.
  void on_canary_result(std::size_t i, double now, double error);
  double aggregate_fps();
  double planning_rate(double measured) const;
  void maybe_start_repartition(double now);
  void coordinator_tick();
  void device_poll(std::size_t i);
  void device_sample(std::size_t i);
  void fleet_sample();

  sim::EventQueue& queue_;
  const core::AcceleratorLibrary& fleet_library_;
  const FleetConfig& config_;
  RoutingPolicy& router_;
  double horizon_s_;

  std::vector<std::unique_ptr<edge::ServingPolicy>> policies_;
  std::vector<std::unique_ptr<faults::FaultInjector>> injectors_;  ///< null = fault-free
  std::vector<std::unique_ptr<edge::DeviceSim>> devices_;
  /// Cleared while the coordinator drains/reconfigures a device.
  std::vector<char> accepting_;

  HealthMonitor monitor_;
  /// Devices waiting for the dispatcher to route them a half-open probe.
  std::vector<char> probe_wanted_;

  /// Integrity layer (sized to the fleet only when config.integrity.enabled):
  /// one drift detector per device fed from that device's canary stream, and
  /// the time of the last detection-triggered reload (cooldown gate, so a
  /// slow reload is not re-issued on every canary while corruption clears).
  std::vector<integrity::DriftDetector> integrity_detectors_;
  std::vector<double> last_repair_s_;
  /// One entry per frame waiting in a device's queue (front = oldest):
  /// dispatch timestamp + tag. Kept in lock-step with DeviceSim::queued();
  /// the tag lets duplicate hedging name a stuck frame without pulling it.
  struct QueuedFrame {
    double since = 0.0;
    std::int64_t tag = edge::DeviceSim::kNoTag;
  };
  std::vector<std::deque<QueuedFrame>> queued_since_;

  FleetMetrics metrics_;
  /// The frames waiting at ingress, in the queue's scheduling order.
  /// Points at default_ingress_ unless set_ingress_queue installed another.
  std::unique_ptr<FifoIngress> default_ingress_;
  IngressQueue* ingress_ = nullptr;
  bool draining_ = false;  ///< re-entrancy guard for drain_ingress()

  std::function<void(std::int64_t, double)> on_frame_done_;
  std::function<void(std::int64_t)> on_frame_lost_;

  /// Duplicate-hedge bookkeeping (hedge_duplicate mode): one entry per frame
  /// with two live copies in flight. First completion wins; the loser is
  /// discarded as hedge_wasted. Anonymous frames get internal tags (< -1,
  /// from next_internal_tag_) at admission so their copies dedupe too.
  struct HedgeEntry {
    int copies = 2;
    bool delivered = false;
  };
  std::unordered_map<std::int64_t, HedgeEntry> hedge_copies_;
  std::int64_t next_internal_tag_ = -2;
  double hedge_wasted_qoe_ = 0.0;  ///< accuracy sum of discarded duplicates

  // Coordinator state (see fleet.hpp for the drain-and-reconfigure design).
  std::deque<double> recent_arrivals_;
  std::optional<forecast::ForecastTracker> coord_tracker_;
  enum class CoordState { kIdle, kDraining, kReconfiguring };
  CoordState coord_state_ = CoordState::kIdle;
  std::size_t coord_device_ = 0;
  std::size_t coord_target_ = 0;
  double drain_started_s_ = 0.0;
  double last_repartition_end_s_ = -1e18;
  /// Aggregate FPS at the last fully-converged evaluation; the hysteresis
  /// band is centred here, not on the last action, so a half-converged fleet
  /// keeps converging at a stable rate.
  double last_converged_fps_ = -1.0;

  // Fleet sample window: totals at the previous sample instant.
  std::int64_t snap_arrived_ = 0;
  std::int64_t snap_lost_ = 0;
  double snap_qoe_ = 0.0;
};

}  // namespace adaflow::fleet
