#pragma once

/// \file fleet.hpp
/// Multi-FPGA cluster serving simulation: N heterogeneous devices — each an
/// edge::DeviceSim with its own serving policy, power profile, and optional
/// fault injector — behind a dispatcher with a bounded ingress queue and a
/// pluggable RoutingPolicy. This is the scale-out layer above the paper's
/// single Edge server: the same camera traffic, but drained by a cluster.
///
/// Ingress semantics: an arriving frame is routed immediately when any
/// device is accepting and has queue headroom; otherwise it waits in the
/// bounded ingress queue (re-dispatched the moment headroom appears) and is
/// lost only when that queue is also full.
///
/// The optional fleet coordinator generalizes the paper's switch-interval
/// rule from one device to the cluster: as the aggregate incoming FPS
/// shifts, it re-partitions the library across the coordinated devices by
/// drain-and-reconfigure — one device at a time is taken out of rotation,
/// its queue drains into the rest of the fleet via the router, the Fixed
/// accelerator is reconfigured to the version matching the new per-device
/// demand share, and the device rejoins. The cluster never loses more than
/// one device's capacity to a reconfiguration.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "adaflow/core/library.hpp"
#include "adaflow/core/runtime_manager.hpp"
#include "adaflow/edge/server_types.hpp"
#include "adaflow/edge/workload.hpp"
#include "adaflow/faults/fault_injector.hpp"
#include "adaflow/forecast/tracker.hpp"
#include "adaflow/fleet/health.hpp"
#include "adaflow/fleet/routing.hpp"
#include "adaflow/integrity/manager.hpp"
#include "adaflow/sim/stats.hpp"

namespace adaflow::edge {
class DeviceSim;
}

namespace adaflow::fleet {

/// One device slot of the fleet. The policy factory runs once per
/// run_fleet() call; everything it captures (libraries, configs) must
/// outlive the run.
struct FleetDevice {
  std::string name;
  std::function<std::unique_ptr<edge::ServingPolicy>()> make_policy;
  edge::ServerConfig server;
  /// Device-local fault schedule; the injector is seeded from the fleet seed
  /// and the device index, so runs replay bit-identically.
  std::optional<faults::FaultSchedule> fault_schedule;
  /// The coordinator may drain-and-reconfigure this device. Coordinated
  /// devices should use a PinnedPolicy (see pinned_device) so the local
  /// policy does not fight the cluster-level decisions.
  bool coordinated = false;
  /// Library the coordinator uses to pick this device's versions (and that
  /// pinned_device serves from); null means the library passed to
  /// run_fleet(). Heterogeneous fleets point this at per-device scaled
  /// copies (core::scale_library_fps).
  const core::AcceleratorLibrary* library = nullptr;
  /// Optional per-device hook run once right after the DeviceSim is built
  /// (before any traffic), with the device and its index. Workload layers
  /// use it to install service models — e.g. detect::DetectionWorkload
  /// attaches its per-frame NMS cost + quality hook here. Must be
  /// deterministic in (device, index) for bit-identical replay.
  std::function<void(edge::DeviceSim&, std::size_t)> configure;
};

/// Fleet-level adaptation knobs (the cluster generalization of the paper's
/// Runtime Manager rule-based criteria).
struct FleetCoordinatorConfig {
  bool enabled = false;
  double poll_interval_s = 0.5;
  double estimate_window_s = 1.0;  ///< aggregate ingress-rate window
  double warmup_s = 1.0;           ///< no repartitions before the estimate fills
  /// Ignore aggregate-FPS shifts smaller than this fraction.
  double fps_hysteresis = 0.15;
  /// Consecutive repartitions are spaced by factor x the device's
  /// reconfiguration time — the paper's switch-interval rule applied
  /// cluster-wide (at most one device is ever out of rotation).
  double switch_interval_factor = 10.0;
  /// A draining device is reconfigured even if its queue has not emptied
  /// after this long (frames then wait through the switch).
  double drain_timeout_s = 1.0;
  double accuracy_threshold = 0.10;
  double fps_margin = 1.10;
  /// Re-partition on the PREDICTED aggregate rate: every coordinator tick
  /// past warmup feeds the measured aggregate FPS into a forecaster, and
  /// targets are picked for the forecast `forecast.horizon_windows` ticks
  /// ahead (floored at the measured rate, so a predicted fall never
  /// repartitions early). The drain-and-reconfigure cycle then runs while
  /// the old rate still holds instead of after the shift has landed.
  bool predictive = false;
  forecast::ForecastTrackerConfig forecast;
};

struct FleetConfig {
  std::vector<FleetDevice> devices;
  /// Frames that find every device queue full wait here; beyond this the
  /// fleet sheds them (ingress_lost).
  std::int64_t ingress_capacity = 128;
  /// Cadence of the fleet-level metric series (per-device series keep their
  /// own ServerConfig cadence).
  double sample_interval_s = 0.5;
  FleetCoordinatorConfig coordinator;
  /// Dispatcher-side resilience: circuit-breaker health monitoring, probed
  /// recovery, and hedged re-dispatch. Off by default (PR 2 behaviour).
  HealthConfig health;
  /// Silent-corruption detection: per-device canary probing + drift
  /// detectors, detection-triggered reload, and optional quarantine of
  /// confirmed-corrupt devices. Off by default.
  integrity::FleetIntegrityConfig integrity;

  /// Throws ConfigError naming the offending device/field.
  void validate() const;
};

/// Per-tenant accounting row inside FleetMetrics. Filled by drivers that run
/// multi-tenant traffic (src/tenant); empty for single-tenant runs. Counts
/// follow one frame's life: offered -> (admitted | throttled) ->
/// (delivered | shed | lost), so offered == admitted + throttled and
/// admitted == delivered + shed + lost + in_flight at any instant.
struct TenantUsage {
  std::string name;
  std::int64_t offered = 0;    ///< frames the tenant's trace generated
  std::int64_t admitted = 0;   ///< past the token-bucket admission control
  std::int64_t throttled = 0;  ///< rejected by the token bucket
  std::int64_t shed = 0;       ///< lost at the (per-class) ingress queue
  std::int64_t delivered = 0;  ///< unique completions (hedge duplicates deduped)
  std::int64_t lost = 0;       ///< destroyed post-dispatch (devices, re-park sheds)
  double qoe_accuracy_sum = 0.0;  ///< summed delivered accuracy
  /// Seconds this tenant spent in SLO violation (per sample window: admitted
  /// traffic present but nothing delivered, or window p95 latency above the
  /// tenant's bound).
  double slo_violation_s = 0.0;
  sim::LatencyHistogram latency;  ///< capture->result latency of delivered frames

  /// QoE over offered frames (shed/throttled frames score zero), matching
  /// FleetMetrics::qoe() charging losses to the cluster.
  double qoe() const {
    return offered > 0 ? qoe_accuracy_sum / static_cast<double>(offered) : 0.0;
  }
};

struct FleetDeviceResult {
  std::string name;
  edge::RunMetrics metrics;
  std::int64_t queued_at_end = 0;     ///< frames still waiting at t_end
  std::int64_t quarantines = 0;       ///< circuit-breaker trips on this device
  std::int64_t rejoins = 0;           ///< probed recoveries back to healthy
  HealthState final_health = HealthState::kHealthy;
};

/// Aggregate + per-device outcome of one fleet run.
struct FleetMetrics {
  std::int64_t arrived = 0;       ///< frames offered to the ingress
  std::int64_t dispatched = 0;    ///< frames handed to a device queue (incl. re-dispatch)
  std::int64_t ingress_lost = 0;  ///< shed at the full ingress queue
  std::int64_t ingress_backlog = 0;  ///< still waiting at ingress at t_end
  /// Frames pulled back out of a sick or slow device's queue and offered to
  /// the dispatcher again (quarantine drains + hedges). Each pull re-enters
  /// the dispatch path, so flow conservation reads
  ///   arrived + redispatched == dispatched + ingress_lost + ingress_backlog.
  std::int64_t redispatched = 0;
  std::int64_t hedged = 0;  ///< subset of redispatched: queue-wait hedges
  /// Duplicate-hedge completions that lost the race and were discarded
  /// (hedge_duplicate mode only). finalize() already subtracts them from
  /// processed and qoe_accuracy_sum, so delivered-frame counts stay honest.
  std::int64_t hedge_wasted = 0;
  std::int64_t quarantines = 0;  ///< circuit-breaker trips, fleet-wide
  std::int64_t rejoins = 0;      ///< probed recoveries, fleet-wide
  std::int64_t processed = 0;
  std::int64_t device_lost = 0;  ///< lost inside devices (stall drops, ...)
  double qoe_accuracy_sum = 0.0;
  double energy_j = 0.0;
  double duration_s = 0.0;
  int model_switches = 0;      ///< summed over devices
  int reconfigurations = 0;    ///< summed over devices
  int repartitions = 0;        ///< completed coordinator drain-and-reconfigure cycles
  /// p95 of the sampled worst-device backlog drain time — the fleet's tail
  /// latency proxy (a frame routed at a sample instant waits at most about
  /// this long on the slowest queue).
  double tail_latency_p95_s = 0.0;

  sim::TimeSeries workload_series;  ///< aggregate ingress FPS per window
  sim::TimeSeries loss_series;      ///< fleet loss fraction per window
  sim::TimeSeries qoe_series;       ///< fleet QoE per window
  sim::TimeSeries backlog_series;   ///< worst-device backlog estimate [s]

  /// Summed over devices: faults that manifested and how devices reacted.
  sim::FaultStats faults;

  /// Quality of the coordinator's aggregate-rate forecast (all-zero unless
  /// the coordinator runs with `predictive` set).
  sim::ForecastStats forecast;

  /// Summed over devices: the silent-corruption ledger — config upsets that
  /// landed, wrong frames served while corrupt, canary traffic and its
  /// verdicts, scrubs and repairs (all-zero unless upsets or the integrity
  /// layer are configured).
  sim::IntegrityStats integrity;

  /// Summed over devices: detection-workload counters and mAP-proxy sums
  /// (all-zero unless a detection service model is attached via
  /// FleetDevice::configure).
  sim::DetectionStats detection;

  /// True end-to-end capture->result latency over delivered frames. Filled
  /// only by drivers that tag their frames (the ingest pipeline); empty for
  /// plain run_fleet traffic, whose frames are anonymous.
  sim::LatencyHistogram e2e_latency;

  std::vector<FleetDeviceResult> devices;

  /// Per-tenant breakdown (multi-tenant drivers only; see TenantUsage).
  std::vector<TenantUsage> tenants;

  std::int64_t lost() const { return ingress_lost + device_lost; }
  double frame_loss() const {
    return arrived > 0 ? static_cast<double>(lost()) / static_cast<double>(arrived) : 0.0;
  }
  /// Fleet QoE = summed model accuracy over processed frames / offered frames
  /// (the paper's QoE, with the ingress loss charged to the cluster).
  double qoe() const {
    return arrived > 0 ? qoe_accuracy_sum / static_cast<double>(arrived) : 0.0;
  }
  double average_power_w() const { return duration_s > 0 ? energy_j / duration_s : 0.0; }

  /// Folds \p other — the metrics of a DISJOINT shard of the fleet simulated
  /// over the same wall of time — into this one (the sharded engine's
  /// reduction, run on the main thread in fixed shard order). Counters,
  /// energy, fault/forecast stats, and the e2e histogram add; duration and
  /// tail_latency_p95_s take the max (each shard's p95 lower-bounds the
  /// union's, and the conservative-window engine reports the worst shard);
  /// device results and tenant rows concatenate in call order; the workload
  /// series merges additively, backlog as element-wise max, loss/qoe as the
  /// workload-weighted mean. A default-constructed FleetMetrics is the
  /// identity and the integer state merges associatively (doubles to
  /// rounding) — the contract tests/shard/test_merge.cpp pins.
  void merge(const FleetMetrics& other);
};

/// Serves one library version on its Fixed-Pruning accelerator and never
/// acts on its own; the fleet coordinator re-targets it through
/// DeviceSim::command_switch. The cluster-side counterpart of the paper's
/// Fixed accelerator: cheap to run, expensive to change.
class PinnedPolicy final : public edge::ServingPolicy {
 public:
  PinnedPolicy(const core::AcceleratorLibrary& library, std::size_t version);
  edge::ServingMode initial_mode() override;
  std::optional<edge::SwitchAction> on_poll(double, double) override { return std::nullopt; }

 private:
  const core::AcceleratorLibrary& library_;
  std::size_t version_;
};

/// Runs the full cluster simulation of \p trace. \p library is the fleet's
/// default library (coordinator targets, pinned devices without their own);
/// \p seed drives arrivals and the per-device fault injectors — the same
/// (config, trace, seed) triple replays bit-identically.
FleetMetrics run_fleet(const edge::WorkloadTrace& trace, const core::AcceleratorLibrary& library,
                       const FleetConfig& config, RoutingPolicy& router, std::uint64_t seed);

/// One self-managed device slot: its own serving policy of \p kind over
/// \p library (per-device manager construction from one shared library).
FleetDevice managed_device(std::string name, const core::AcceleratorLibrary& library,
                           const core::RuntimeManagerConfig& manager,
                           core::PolicyKind kind = core::PolicyKind::kAdaFlow);

/// One coordinator-driven device slot pinned to \p version of \p library.
FleetDevice pinned_device(std::string name, const core::AcceleratorLibrary& library,
                          std::size_t version);

/// N identical managed devices ("dev0".."devN-1") over one shared library.
std::vector<FleetDevice> homogeneous_devices(const core::AcceleratorLibrary& library,
                                             const core::RuntimeManagerConfig& manager,
                                             int count,
                                             core::PolicyKind kind = core::PolicyKind::kAdaFlow);

}  // namespace adaflow::fleet
