#include "adaflow/fleet/engine.hpp"

#include <algorithm>
#include <cmath>

#include "adaflow/common/error.hpp"
#include "adaflow/sim/event_queue.hpp"

namespace adaflow::fleet {

edge::ServingMode fixed_mode_for(const core::AcceleratorLibrary& library, std::size_t version) {
  const core::ModelVersion& v = library.versions.at(version);
  edge::ServingMode mode;
  mode.model_version = v.version;
  mode.accelerator = "Fixed@" + v.version;
  mode.fps = v.fps_fixed;
  mode.accuracy = v.accuracy;
  mode.power_busy_w = v.power_busy_fixed_w;
  mode.power_idle_w = v.power_idle_fixed_w;
  return mode;
}

std::size_t find_version(const core::AcceleratorLibrary& library,
                         const std::string& version_name) {
  for (std::size_t i = 0; i < library.versions.size(); ++i) {
    if (library.versions[i].version == version_name) {
      return i;
    }
  }
  return library.versions.size();
}

std::uint64_t device_seed(std::uint64_t fleet_seed, std::size_t index) {
  return fleet_seed ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(index + 1));
}

FleetEngine::FleetEngine(sim::EventQueue& queue, const core::AcceleratorLibrary& library,
                         const FleetConfig& config, RoutingPolicy& router, std::uint64_t seed,
                         double horizon_s)
    : queue_(queue), fleet_library_(library), config_(config), router_(router),
      horizon_s_(horizon_s), monitor_(config.health, config.devices.size()) {
  require(horizon_s_ > 0.0, "FleetEngine horizon_s must be positive");
  const std::size_t n = config_.devices.size();
  policies_.reserve(n);
  injectors_.reserve(n);
  devices_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const FleetDevice& d = config_.devices[i];
    policies_.push_back(d.make_policy());
    require(policies_.back() != nullptr,
            "fleet device '" + d.name + "' factory returned a null policy");
    if (d.fault_schedule.has_value()) {
      injectors_.push_back(
          std::make_unique<faults::FaultInjector>(*d.fault_schedule, device_seed(seed, i)));
    } else {
      injectors_.push_back(nullptr);
    }
    devices_.push_back(std::make_unique<edge::DeviceSim>(queue_, *policies_.back(), d.server,
                                                         injectors_.back().get(), d.name));
    if (d.configure) {
      d.configure(*devices_.back(), i);
    }
  }
  accepting_.assign(n, 1);
  probe_wanted_.assign(n, 0);
  queued_since_.resize(n);
  if (config_.integrity.enabled) {
    integrity_detectors_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      integrity_detectors_.emplace_back(config_.integrity.detector);
    }
    last_repair_s_.assign(n, -1e18);
  }
  default_ingress_ = std::make_unique<FifoIngress>(config_.ingress_capacity);
  ingress_ = default_ingress_.get();
  metrics_.workload_series.interval_s = config_.sample_interval_s;
  metrics_.loss_series.interval_s = config_.sample_interval_s;
  metrics_.qoe_series.interval_s = config_.sample_interval_s;
  metrics_.backlog_series.interval_s = config_.sample_interval_s;
  if (config_.coordinator.enabled && config_.coordinator.predictive) {
    forecast::ForecastTrackerConfig fc = config_.coordinator.forecast;
    fc.window_s = config_.coordinator.poll_interval_s;
    coord_tracker_.emplace(fc);
  }
}

FleetEngine::~FleetEngine() = default;

const core::AcceleratorLibrary& FleetEngine::device_library(std::size_t i) const {
  return config_.devices[i].library != nullptr ? *config_.devices[i].library : fleet_library_;
}

double FleetEngine::worst_backlog_seconds() const {
  double worst = 0.0;
  for (const auto& dev : devices_) {
    worst = std::max(worst, dev->backlog_seconds());
  }
  return worst;
}

void FleetEngine::set_frame_hooks(std::function<void(std::int64_t, double)> on_done,
                                  std::function<void(std::int64_t)> on_lost) {
  on_frame_done_ = std::move(on_done);
  on_frame_lost_ = std::move(on_lost);
}

void FleetEngine::set_ingress_queue(IngressQueue& ingress) {
  require(metrics_.arrived == 0, "set_ingress_queue must be called before any frame is offered");
  require(ingress.empty(), "set_ingress_queue requires an empty queue");
  ingress_ = &ingress;
}

void FleetEngine::pump() { drain_ingress(); }

void FleetEngine::command_device_switch(std::size_t i, const edge::SwitchAction& action) {
  devices_.at(i)->command_switch(action);
}

// --- dispatcher -------------------------------------------------------------

bool FleetEngine::excluded(std::size_t i) const { return monitor_.out_of_rotation(i); }

/// Routes one frame to a device if any is eligible. Returns false (and
/// touches nothing) when every device is drained, quarantined, or full.
/// \p exclude additionally bars one device (hedging must not hand a frame
/// back to the queue it was just pulled from).
bool FleetEngine::try_dispatch(std::int64_t tag, std::size_t exclude) {
  std::vector<DeviceStatus> statuses(devices_.size());
  bool any_eligible = false;
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    const edge::DeviceSim& dev = *devices_[i];
    DeviceStatus& s = statuses[i];
    s.eligible = accepting_[i] != 0 && !excluded(i) && i != exclude && dev.free_slots() > 0;
    s.queued = dev.queued();
    s.capacity = dev.queue_capacity();
    s.busy = dev.processing();
    s.switching = dev.switch_in_flight();
    s.fps = dev.mode().fps;
    s.accuracy = dev.mode().accuracy;
    s.backlog_s = dev.backlog_seconds();
    any_eligible = any_eligible || s.eligible;
  }
  if (!any_eligible) {
    return false;
  }
  const std::size_t idx = router_.route_tagged(queue_.now(), tag, statuses);
  if (idx == RoutingPolicy::kDecline) {
    return false;  // class-based router keeps this frame at ingress
  }
  require(idx < devices_.size() && statuses[idx].eligible,
          "router '" + router_.name() + "' returned an ineligible device");
  // Timestamp first: offer_frame may start service synchronously and fire
  // the headroom callback, which pops this very entry.
  queued_since_[idx].push_back(QueuedFrame{queue_.now(), tag});
  const bool taken = devices_[idx]->offer_frame(/*count_loss=*/false, tag);
  require(taken, "eligible device '" + devices_[idx]->name() + "' rejected a frame");
  ++metrics_.dispatched;
  return true;
}

/// Feeds one frame to a probing device as its half-open trial. Probes
/// outrank normal routing so a recovering device is never starved by
/// healthier peers. Returns true when the frame was consumed as a probe.
bool FleetEngine::try_probe_dispatch(std::int64_t tag) {
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    if (probe_wanted_[i] == 0 || devices_[i]->free_slots() <= 0) {
      continue;
    }
    queued_since_[i].push_back(QueuedFrame{queue_.now(), tag});
    const bool taken = devices_[i]->offer_frame(/*count_loss=*/false, tag);
    if (!taken) {
      queued_since_[i].pop_back();
      continue;
    }
    ++metrics_.dispatched;
    probe_wanted_[i] = 0;
    monitor_.on_probe_dispatched(i, queue_.now(), devices_[i]->metrics().processed);
    return true;
  }
  return false;
}

/// Re-dispatches waiting ingress frames while headroom lasts. Invoked on
/// every device headroom event and whenever a drained device rejoins.
void FleetEngine::drain_ingress() {
  // Dispatching can start a frame immediately, which fires the device's
  // headroom callback, which lands right back here. The guard makes the
  // nested call a no-op: the outer loop re-checks headroom every iteration,
  // so no wakeup is lost — but without it the nested pop_front() invalidates
  // the entry the outer loop is holding.
  if (draining_) {
    return;
  }
  draining_ = true;
  while (!ingress_->empty()) {
    const std::int64_t tag = ingress_->pop();
    if (!try_probe_dispatch(tag) && !try_dispatch(tag)) {
      ingress_->unpop(tag);
      break;
    }
  }
  draining_ = false;
}

/// A queued frame on device \p i moved into service.
void FleetEngine::on_device_headroom(std::size_t i) {
  if (!queued_since_[i].empty()) {
    queued_since_[i].pop_front();
  }
  drain_ingress();
}

FleetEngine::Admit FleetEngine::offer_frame(std::int64_t tag) {
  if (config_.health.hedge_budget_s > 0.0 && config_.health.hedge_duplicate) {
    require(tag >= 0 || tag == edge::DeviceSim::kNoTag,
            "hedge_duplicate reserves negative frame tags for the engine");
    if (tag == edge::DeviceSim::kNoTag) {
      // Anonymous frames get engine-internal tags (< -1) so a duplicated
      // copy can be deduped at completion; user hooks never see them.
      tag = next_internal_tag_--;
    }
  }
  ++metrics_.arrived;
  if (config_.coordinator.enabled) {
    recent_arrivals_.push_back(queue_.now());
  }
  // Waiting frames go first: draining in the queue's scheduling order keeps
  // the ingress an honest queue (and tagged latencies monotone under FIFO).
  if (ingress_->empty() && (try_probe_dispatch(tag) || try_dispatch(tag))) {
    return Admit::kDispatched;
  }
  if (ingress_->push(tag)) {
    drain_ingress();
    return Admit::kQueued;
  }
  ++metrics_.ingress_lost;
  return Admit::kShed;
}

// --- frame outcome funnel ---------------------------------------------------

void FleetEngine::frame_done(std::int64_t tag, double accuracy) {
  const auto it = hedge_copies_.find(tag);
  if (it != hedge_copies_.end()) {
    HedgeEntry& entry = it->second;
    const bool winner = !entry.delivered;
    entry.delivered = true;
    if (--entry.copies == 0) {
      hedge_copies_.erase(it);
    }
    if (!winner) {
      // The race was already won: this completion must not count toward
      // delivered frames, QoE, or latency. finalize() subtracts it from the
      // device-side sums.
      ++metrics_.hedge_wasted;
      hedge_wasted_qoe_ += accuracy;
      return;
    }
  }
  if (tag >= 0 && on_frame_done_) {
    on_frame_done_(tag, accuracy);
  }
}

void FleetEngine::frame_lost(std::int64_t tag) {
  const auto it = hedge_copies_.find(tag);
  if (it != hedge_copies_.end()) {
    HedgeEntry& entry = it->second;
    const bool delivered = entry.delivered;
    const bool last = --entry.copies == 0;
    if (last) {
      hedge_copies_.erase(it);
    }
    if (delivered || !last) {
      return;  // the other copy already delivered, or still might
    }
  }
  if (tag >= 0 && on_frame_lost_) {
    on_frame_lost_(tag);
  }
}

// --- health monitoring ------------------------------------------------------

void FleetEngine::redispatch_or_park(std::int64_t tag, std::size_t exclude) {
  ++metrics_.redispatched;
  if (try_dispatch(tag, exclude)) {
    return;
  }
  if (ingress_->push(tag)) {
    return;
  }
  ++metrics_.ingress_lost;
  frame_lost(tag);
}

/// Pulls every waiting frame off a newly-quarantined device and routes it
/// through the rest of the fleet. Frames that find no headroom wait at
/// ingress; they count as re-dispatched, not lost — only overflowing the
/// ingress queue itself loses them (genuine ingress_lost).
void FleetEngine::quarantine_drain(std::size_t i) {
  std::vector<std::int64_t> tags;
  const std::int64_t pulled = devices_[i]->take_queued(devices_[i]->queued(), &tags);
  queued_since_[i].clear();
  for (std::int64_t k = 0; k < pulled; ++k) {
    redispatch_or_park(tags[static_cast<std::size_t>(k)], i);
  }
}

/// Any device other than \p i that could take a hedged frame right now.
bool FleetEngine::any_other_eligible(std::size_t i) const {
  for (std::size_t j = 0; j < devices_.size(); ++j) {
    if (j != i && accepting_[j] != 0 && !excluded(j) && devices_[j]->free_slots() > 0) {
      return true;
    }
  }
  return false;
}

/// Duplicate hedging: every frame stuck past the budget keeps its queue
/// position and a duplicate copy is dispatched to another eligible device
/// (at most one duplicate per frame — the hedge_copies_ entry marks it).
/// Whichever copy completes first wins; frame_done/frame_lost resolve the
/// race so exactly one outcome reaches the caller.
void FleetEngine::hedge_duplicates(double now) {
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    if (excluded(i)) {
      continue;
    }
    // Index loop with per-step re-check: dispatching the duplicate can start
    // service synchronously, fire a headroom event, and reshape any
    // queued_since_ deque under us.
    for (std::size_t k = 0; k < queued_since_[i].size(); ++k) {
      const QueuedFrame q = queued_since_[i][k];
      if (now - q.since < config_.health.hedge_budget_s) {
        break;  // front = oldest; everything behind is younger
      }
      if (q.tag == edge::DeviceSim::kNoTag || hedge_copies_.count(q.tag) != 0) {
        continue;  // anonymous (untracked) or already duplicated
      }
      if (!any_other_eligible(i)) {
        return;  // nowhere to put a duplicate; try again next tick
      }
      if (!try_dispatch(q.tag, i)) {
        return;  // class-based router declined every peer; retry next tick
      }
      // Completion is always a scheduled event, so registering the race
      // right after the synchronous dispatch cannot miss the winner.
      hedge_copies_.emplace(q.tag, HedgeEntry{});
      ++metrics_.redispatched;
      ++metrics_.hedged;
    }
  }
}

void FleetEngine::health_tick() {
  const double now = queue_.now();
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    const edge::DeviceSim& dev = *devices_[i];
    HealthMonitor::Observation obs;
    obs.processed = dev.metrics().processed;
    // Canary frames occupy queue slots but never raise `processed`; counting
    // them as work would make a device with canary-only traffic look
    // stalled and quarantine it for being probed.
    obs.has_work = dev.queued() - dev.queued_canaries() > 0 ||
                   (dev.processing() && !dev.canary_in_service());
    obs.in_maintenance =
        dev.switch_in_flight() || (coord_state_ != CoordState::kIdle && coord_device_ == i);
    obs.nominal_fps = dev.mode().fps;
    const HealthAction action = monitor_.observe(i, now, obs);
    if (action.quarantine) {
      ++metrics_.quarantines;
      if (coord_state_ != CoordState::kIdle && coord_device_ == i) {
        // The device the coordinator was cycling just got quarantined:
        // abort the cycle; the monitor owns the exclusion from here.
        accepting_[i] = 1;
        coord_state_ = CoordState::kIdle;
        last_repartition_end_s_ = now;
      }
      quarantine_drain(i);
      // The fleet shrank: force the coordinator to re-balance the
      // survivors instead of sitting in its hysteresis band.
      last_converged_fps_ = -1.0;
    }
    if (action.want_probe) {
      probe_wanted_[i] = 1;
    }
    if (action.probe_failed) {
      std::vector<std::int64_t> tags;
      if (devices_[i]->take_queued(1, &tags) == 1) {
        // The probe frame is still sitting in the sick queue: reclaim it so
        // no frame is stuck for longer than one probe cycle.
        if (!queued_since_[i].empty()) {
          queued_since_[i].pop_front();
        }
        redispatch_or_park(tags.front(), i);
      }
    }
    if (action.rejoin) {
      ++metrics_.rejoins;
      probe_wanted_[i] = 0;
      // Capacity returned: re-balance, and drain any ingress backlog into
      // the recovered device.
      last_converged_fps_ = -1.0;
      drain_ingress();
    }
  }
  // Hedged re-dispatch: a frame stuck waiting past its budget is pulled
  // back and re-routed — but only when somewhere better exists right now
  // (hedging into a full fleet would just forfeit the frame's position).
  if (config_.health.hedge_budget_s > 0.0) {
    if (config_.health.hedge_duplicate) {
      hedge_duplicates(now);
    } else {
      for (std::size_t i = 0; i < devices_.size(); ++i) {
        if (excluded(i)) {
          continue;  // quarantine drain already emptied it
        }
        while (!queued_since_[i].empty() &&
               now - queued_since_[i].front().since >= config_.health.hedge_budget_s &&
               any_other_eligible(i)) {
          std::vector<std::int64_t> tags;
          if (devices_[i]->take_queued(1, &tags) == 0) {
            break;
          }
          queued_since_[i].pop_front();
          ++metrics_.redispatched;
          ++metrics_.hedged;
          const bool placed = try_dispatch(tags.front(), i);
          require(placed, "hedge re-dispatch failed despite an eligible device");
        }
      }
    }
  }
  // Frames a class-based router declined earlier wait at ingress without a
  // headroom event of their own; the tick retries them (no-op otherwise —
  // never-declining routers drain eagerly on every push and headroom event).
  if (!ingress_->empty()) {
    drain_ingress();
  }
  const double next = now + config_.health.tick_interval_s;
  if (next <= horizon_s_) {
    queue_.schedule_at(next, [this] { health_tick(); });
  }
}

// --- integrity layer --------------------------------------------------------

/// One canary round: every device gets one golden frame through its normal
/// queue (the probing throughput tax). A full queue skips its probe — a
/// saturated device must not displace real frames — and a quarantined device
/// keeps probing, so corruption clearing under quarantine is still observed.
void FleetEngine::canary_tick() {
  for (auto& dev : devices_) {
    dev->offer_canary();
  }
  const double next = queue_.now() + config_.integrity.canary_interval_s;
  if (next <= horizon_s_) {
    queue_.schedule_at(next, [this] { canary_tick(); });
  }
}

void FleetEngine::on_canary_result(std::size_t i, double now, double error) {
  if (!integrity_detectors_[i].feed(error)) {
    return;
  }
  integrity_detectors_[i].reset();
  // Score the verdict against ground truth (detection vs false alarm).
  devices_[i]->note_integrity_detection();
  // Detection-triggered reload of the live configuration through the
  // supervised-switch path: full reconfiguration for a Fixed variant, the
  // fast config-register rewrite for the shared Flexible overlay. Cooldown
  // keeps a flapping detector from hammering the PR controller; a switch
  // already in flight (retry ladder, coordinator cycle) repairs on its own.
  if (now - last_repair_s_[i] >= config_.integrity.repair_cooldown_s &&
      !devices_[i]->switch_in_flight()) {
    const core::AcceleratorLibrary& lib = device_library(i);
    const edge::ServingMode& mode = devices_[i]->mode();
    const std::size_t version = find_version(lib, mode.model_version);
    if (version < lib.versions.size()) {
      edge::SwitchAction action;
      action.target = mode;
      if (mode.accelerator == "Flexible") {
        action.switch_time_s = lib.versions[version].flexible_switch_time_s;
        action.is_reconfiguration = false;
      } else {
        action.switch_time_s = lib.reconfig_time_s;
        action.is_reconfiguration = true;
      }
      last_repair_s_[i] = now;
      command_device_switch(i, action);
    }
  }
  // Confirmed-corrupt devices leave the routing set through the SAME
  // quarantine/drain/probe/rejoin machinery crashes use; the reload just
  // issued doubles as the cure the rejoin probes will verify.
  if (config_.integrity.quarantine_on_detect && monitor_.force_quarantine(i, now)) {
    ++metrics_.quarantines;
    if (coord_state_ != CoordState::kIdle && coord_device_ == i) {
      accepting_[i] = 1;
      coord_state_ = CoordState::kIdle;
      last_repartition_end_s_ = now;
    }
    quarantine_drain(i);
    last_converged_fps_ = -1.0;
  }
}

// --- coordinator ------------------------------------------------------------

double FleetEngine::aggregate_fps() {
  const double window = config_.coordinator.estimate_window_s;
  const double cutoff = queue_.now() - window;
  while (!recent_arrivals_.empty() && recent_arrivals_.front() < cutoff) {
    recent_arrivals_.pop_front();
  }
  return static_cast<double>(recent_arrivals_.size()) / window;
}

/// The rate the coordinator plans against: the measured aggregate, or —
/// under predictive re-partitioning — the forecast-horizon rate floored at
/// the measurement (a predicted fall never repartitions early; a predicted
/// rise repartitions while the old rate still holds).
double FleetEngine::planning_rate(double measured) const {
  if (!coord_tracker_.has_value() || coord_tracker_->forecaster().observations() < 2) {
    return measured;
  }
  return std::max(measured, coord_tracker_->current().rate);
}

void FleetEngine::maybe_start_repartition(double now) {
  if (now < config_.coordinator.warmup_s) {
    return;
  }
  const double agg = planning_rate(aggregate_fps());
  if (agg <= 0.0) {
    return;
  }
  if (last_converged_fps_ > 0.0 &&
      std::abs(agg - last_converged_fps_) <
          config_.coordinator.fps_hysteresis * last_converged_fps_) {
    return;
  }
  // Quarantined devices are not capacity: the survivors' share grows and
  // the coordinator re-targets them to faster (lower-accuracy) versions.
  std::int64_t accepting_count = 0;
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    accepting_count += (accepting_[i] != 0 && !excluded(i)) ? 1 : 0;
  }
  if (accepting_count == 0) {
    return;
  }
  const double share = agg / static_cast<double>(accepting_count);
  bool mismatch_blocked = false;
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    if (!config_.devices[i].coordinated || accepting_[i] == 0 || excluded(i) ||
        devices_[i]->switch_in_flight()) {
      continue;
    }
    const core::AcceleratorLibrary& lib = device_library(i);
    const std::size_t target =
        core::select_library_version(lib, share, config_.coordinator.accuracy_threshold,
                                     config_.coordinator.fps_margin, /*use_flexible_fps=*/false);
    const std::size_t current = find_version(lib, devices_[i]->mode().model_version);
    if (current == lib.versions.size() || target == current) {
      continue;
    }
    // The paper's switch-interval rule, cluster-wide: consecutive
    // repartition cycles keep their spacing even when a device is overdue.
    if (now - last_repartition_end_s_ <
        config_.coordinator.switch_interval_factor * lib.reconfig_time_s) {
      mismatch_blocked = true;
      continue;
    }
    // Take this device out of rotation; the router spreads its share over
    // the rest of the fleet while the queue drains.
    accepting_[i] = 0;
    coord_device_ = i;
    coord_target_ = target;
    drain_started_s_ = now;
    coord_state_ = CoordState::kDraining;
    return;
  }
  if (mismatch_blocked) {
    return;  // retry next tick once the spacing window opens
  }
  // Every coordinated device matches its target at this rate: record the
  // converged operating point the hysteresis band is centred on.
  last_converged_fps_ = agg;
}

void FleetEngine::coordinator_tick() {
  const double now = queue_.now();
  if (coord_tracker_.has_value() && now >= config_.coordinator.warmup_s) {
    // One observation per tick, regardless of the drain state machine, so
    // the forecaster sees an unbroken fixed-cadence series.
    coord_tracker_->observe(aggregate_fps());
  }
  switch (coord_state_) {
    case CoordState::kIdle:
      maybe_start_repartition(now);
      break;
    case CoordState::kDraining: {
      edge::DeviceSim& dev = *devices_[coord_device_];
      if (excluded(coord_device_)) {
        // Quarantined mid-drain (health_tick may run between coordinator
        // ticks): abort the cycle, the monitor owns the device now.
        accepting_[coord_device_] = 1;
        coord_state_ = CoordState::kIdle;
        last_repartition_end_s_ = now;
        break;
      }
      if (dev.switch_in_flight()) {
        break;  // self-healing ladder busy (stall recovery); wait it out
      }
      if (dev.idle() || now - drain_started_s_ >= config_.coordinator.drain_timeout_s) {
        const core::AcceleratorLibrary& lib = device_library(coord_device_);
        edge::SwitchAction action;
        action.target = fixed_mode_for(lib, coord_target_);
        action.switch_time_s = lib.reconfig_time_s;
        action.is_reconfiguration = true;
        dev.command_switch(action);
        coord_state_ = CoordState::kReconfiguring;
      }
      break;
    }
    case CoordState::kReconfiguring: {
      edge::DeviceSim& dev = *devices_[coord_device_];
      if (dev.switch_in_flight()) {
        break;
      }
      // The episode resolved — applied, or abandoned by the retry ladder.
      // Either way the device rejoins; only a successful cycle counts as a
      // repartition.
      if (find_version(device_library(coord_device_), dev.mode().model_version) ==
          coord_target_) {
        ++metrics_.repartitions;
      }
      accepting_[coord_device_] = 1;
      last_repartition_end_s_ = now;
      coord_state_ = CoordState::kIdle;
      drain_ingress();
      break;
    }
  }
  const double next = now + config_.coordinator.poll_interval_s;
  if (next <= horizon_s_) {
    queue_.schedule_at(next, [this] { coordinator_tick(); });
  }
}

// --- cadences and sampling --------------------------------------------------

void FleetEngine::device_poll(std::size_t i) {
  devices_[i]->poll();
  const double next = queue_.now() + config_.devices[i].server.poll_interval_s;
  if (next <= horizon_s_) {
    queue_.schedule_at(next, [this, i] { device_poll(i); });
  }
}

void FleetEngine::device_sample(std::size_t i) {
  devices_[i]->sample_window();
  const double next = queue_.now() + config_.devices[i].server.sample_interval_s;
  if (next <= horizon_s_ + 1e-9) {
    queue_.schedule_at(next, [this, i] { device_sample(i); });
  }
}

void FleetEngine::fleet_sample() {
  std::int64_t arrived_total = metrics_.arrived;
  std::int64_t lost_total = metrics_.ingress_lost;
  double qoe_total = 0.0;
  double worst_backlog_s = 0.0;
  for (const auto& dev : devices_) {
    lost_total += dev->metrics().lost;
    qoe_total += dev->metrics().qoe_accuracy_sum;
    worst_backlog_s = std::max(worst_backlog_s, dev->backlog_seconds());
  }
  qoe_total -= hedge_wasted_qoe_;  // discarded duplicate completions
  const std::int64_t d_arrived = arrived_total - snap_arrived_;
  const std::int64_t d_lost = lost_total - snap_lost_;
  const double d_qoe = qoe_total - snap_qoe_;
  const double da = static_cast<double>(d_arrived);
  metrics_.workload_series.values.push_back(da / config_.sample_interval_s);
  metrics_.loss_series.values.push_back(d_arrived > 0 ? static_cast<double>(d_lost) / da : 0.0);
  metrics_.qoe_series.values.push_back(d_arrived > 0 ? d_qoe / da : 0.0);
  metrics_.backlog_series.values.push_back(worst_backlog_s);
  snap_arrived_ = arrived_total;
  snap_lost_ = lost_total;
  snap_qoe_ = qoe_total;

  const double next = queue_.now() + config_.sample_interval_s;
  if (next <= horizon_s_ + 1e-9) {
    queue_.schedule_at(next, [this] { fleet_sample(); });
  }
}

// --- lifecycle --------------------------------------------------------------

void FleetEngine::start() {
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    devices_[i]->start();
    devices_[i]->set_on_headroom([this, i] { on_device_headroom(i); });
    devices_[i]->set_frame_hooks(
        [this](std::int64_t tag, double accuracy) { frame_done(tag, accuracy); },
        [this](std::int64_t tag) { frame_lost(tag); });
    if (config_.integrity.enabled) {
      devices_[i]->set_canary_hook(
          [this, i](double now_s, double error) { on_canary_result(i, now_s, error); });
    }
  }
  const double t0 = queue_.now();
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    const edge::ServerConfig& sc = config_.devices[i].server;
    queue_.schedule_at(t0 + sc.poll_interval_s, [this, i] { device_poll(i); });
    queue_.schedule_at(t0 + sc.sample_interval_s, [this, i] { device_sample(i); });
  }
  queue_.schedule_at(t0 + config_.sample_interval_s, [this] { fleet_sample(); });
  if (config_.coordinator.enabled) {
    queue_.schedule_at(t0 + config_.coordinator.poll_interval_s, [this] { coordinator_tick(); });
  }
  if (config_.health.enabled) {
    queue_.schedule_at(t0 + config_.health.tick_interval_s, [this] { health_tick(); });
  }
  if (config_.integrity.enabled && config_.integrity.canary_interval_s > 0.0) {
    queue_.schedule_at(t0 + config_.integrity.canary_interval_s, [this] { canary_tick(); });
  }
}

FleetMetrics FleetEngine::finalize(double duration_s) {
  metrics_.duration_s = duration_s;
  metrics_.ingress_backlog = static_cast<std::int64_t>(ingress_->size());
  metrics_.devices.reserve(devices_.size());
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    devices_[i]->finalize(duration_s);
    edge::RunMetrics& m = devices_[i]->metrics();
    metrics_.processed += m.processed;
    metrics_.device_lost += m.lost;
    metrics_.qoe_accuracy_sum += m.qoe_accuracy_sum;
    metrics_.energy_j += m.energy_j;
    metrics_.model_switches += m.model_switches;
    metrics_.reconfigurations += m.reconfigurations;
    metrics_.faults.accumulate(m.faults);
    metrics_.integrity.accumulate(m.integrity);
    metrics_.detection.accumulate(m.detection);
    FleetDeviceResult result;
    result.name = config_.devices[i].name;
    result.queued_at_end = devices_[i]->queued();
    result.quarantines = monitor_.quarantines(i);
    result.rejoins = monitor_.rejoins(i);
    result.final_health = monitor_.state(i);
    result.metrics = std::move(m);
    metrics_.devices.push_back(std::move(result));
  }
  // Duplicate-hedge losers were counted by their devices; delivered frames
  // and QoE must count each frame once.
  metrics_.processed -= metrics_.hedge_wasted;
  metrics_.qoe_accuracy_sum -= hedge_wasted_qoe_;
  metrics_.tail_latency_p95_s = sim::percentile(metrics_.backlog_series.values, 0.95);
  if (coord_tracker_.has_value()) {
    metrics_.forecast = coord_tracker_->stats();
  }
  return std::move(metrics_);
}

}  // namespace adaflow::fleet
