#include "adaflow/fleet/fleet.hpp"

#include <algorithm>
#include <functional>

#include "adaflow/common/error.hpp"
#include "adaflow/common/rng.hpp"
#include "adaflow/fleet/engine.hpp"
#include "adaflow/sim/event_queue.hpp"

namespace adaflow::fleet {

void FleetConfig::validate() const {
  if (devices.empty()) {
    throw ConfigError("FleetConfig.devices must not be empty");
  }
  for (std::size_t i = 0; i < devices.size(); ++i) {
    const FleetDevice& d = devices[i];
    const std::string who = "fleet device " + std::to_string(i) + " ('" + d.name + "')";
    if (d.name.empty()) {
      throw ConfigError("fleet device " + std::to_string(i) + " has an empty name");
    }
    if (!d.make_policy) {
      throw ConfigError(who + " has no make_policy factory");
    }
    if (d.server.queue_capacity <= 0) {
      throw ConfigError(who + ": server.queue_capacity must be positive");
    }
    if (!(d.server.poll_interval_s > 0.0)) {
      throw ConfigError(who + ": server.poll_interval_s must be positive");
    }
    if (!(d.server.sample_interval_s > 0.0)) {
      throw ConfigError(who + ": server.sample_interval_s must be positive");
    }
    if (d.library != nullptr && d.library->versions.empty()) {
      throw ConfigError(who + ": library has no versions");
    }
  }
  if (ingress_capacity < 0) {
    throw ConfigError("FleetConfig.ingress_capacity must be >= 0");
  }
  if (!(sample_interval_s > 0.0)) {
    throw ConfigError("FleetConfig.sample_interval_s must be positive");
  }
  if (coordinator.enabled) {
    if (!(coordinator.poll_interval_s > 0.0)) {
      throw ConfigError("FleetCoordinatorConfig.poll_interval_s must be positive");
    }
    if (!(coordinator.estimate_window_s > 0.0)) {
      throw ConfigError("FleetCoordinatorConfig.estimate_window_s must be positive");
    }
    if (coordinator.drain_timeout_s < 0.0) {
      throw ConfigError("FleetCoordinatorConfig.drain_timeout_s must be >= 0");
    }
    if (coordinator.switch_interval_factor < 0.0) {
      throw ConfigError("FleetCoordinatorConfig.switch_interval_factor must be >= 0");
    }
    if (coordinator.fps_hysteresis < 0.0) {
      throw ConfigError("FleetCoordinatorConfig.fps_hysteresis must be >= 0");
    }
  }
  if (health.enabled) {
    health.validate();
  }
  if (integrity.enabled) {
    integrity.validate();
    if (integrity.quarantine_on_detect && !health.enabled) {
      throw ConfigError(
          "FleetIntegrityConfig.quarantine_on_detect requires health.enabled (the "
          "quarantine/probe/rejoin machinery lives in the health monitor)");
    }
  }
}

void FleetMetrics::merge(const FleetMetrics& other) {
  // Weighted series first: they read both sides' workload series pre-merge.
  loss_series = sim::merge_weighted_series(loss_series, workload_series.values,
                                           other.loss_series, other.workload_series.values);
  qoe_series = sim::merge_weighted_series(qoe_series, workload_series.values,
                                          other.qoe_series, other.workload_series.values);
  workload_series = sim::merge_sum_series(workload_series, other.workload_series);
  backlog_series = sim::merge_max_series(backlog_series, other.backlog_series);

  arrived += other.arrived;
  dispatched += other.dispatched;
  ingress_lost += other.ingress_lost;
  ingress_backlog += other.ingress_backlog;
  redispatched += other.redispatched;
  hedged += other.hedged;
  hedge_wasted += other.hedge_wasted;
  quarantines += other.quarantines;
  rejoins += other.rejoins;
  processed += other.processed;
  device_lost += other.device_lost;
  qoe_accuracy_sum += other.qoe_accuracy_sum;
  energy_j += other.energy_j;
  duration_s = std::max(duration_s, other.duration_s);
  model_switches += other.model_switches;
  reconfigurations += other.reconfigurations;
  repartitions += other.repartitions;
  tail_latency_p95_s = std::max(tail_latency_p95_s, other.tail_latency_p95_s);
  faults.accumulate(other.faults);
  forecast.accumulate(other.forecast);
  integrity.accumulate(other.integrity);
  detection.accumulate(other.detection);
  e2e_latency.merge(other.e2e_latency);
  devices.insert(devices.end(), other.devices.begin(), other.devices.end());
  tenants.insert(tenants.end(), other.tenants.begin(), other.tenants.end());
}

PinnedPolicy::PinnedPolicy(const core::AcceleratorLibrary& library, std::size_t version)
    : library_(library), version_(version) {
  require(version < library.versions.size(),
          "pinned version index " + std::to_string(version) + " out of range (library has " +
              std::to_string(library.versions.size()) + " versions)");
}

edge::ServingMode PinnedPolicy::initial_mode() { return fixed_mode_for(library_, version_); }

/// The classic closed-world entry point, now a thin wrapper: one FleetEngine
/// driven by a Poisson arrival process over \p trace. The engine draws no
/// randomness of its own (injector seeds derive from device_seed), so the
/// arrival stream here consumes the seed's Rng exactly as it always did and
/// existing seeded runs replay bit-identically.
FleetMetrics run_fleet(const edge::WorkloadTrace& trace, const core::AcceleratorLibrary& library,
                       const FleetConfig& config, RoutingPolicy& router, std::uint64_t seed) {
  config.validate();
  require(!library.versions.empty(), "fleet library has no versions");
  sim::EventQueue queue;
  FleetEngine engine(queue, library, config, router, seed, trace.duration());
  Rng rng(seed);
  engine.start();

  std::function<void()> schedule_next_arrival = [&] {
    const double rate = trace.rate_at(queue.now());
    if (rate <= 0.0) {
      // Re-check after the next rate boundary.
      queue.schedule_in(0.05, [&] { schedule_next_arrival(); });
      return;
    }
    const double when = queue.now() + rng.exponential(rate);
    if (when <= trace.duration()) {
      queue.schedule_at(when, [&] {
        engine.offer_frame();
        schedule_next_arrival();
      });
    }
  };
  schedule_next_arrival();

  queue.run_until(trace.duration());
  return engine.finalize(trace.duration());
}

FleetDevice managed_device(std::string name, const core::AcceleratorLibrary& library,
                           const core::RuntimeManagerConfig& manager, core::PolicyKind kind) {
  FleetDevice d;
  d.name = std::move(name);
  d.library = &library;
  d.make_policy = [&library, manager, kind] {
    return core::make_serving_policy(kind, library, manager);
  };
  return d;
}

FleetDevice pinned_device(std::string name, const core::AcceleratorLibrary& library,
                          std::size_t version) {
  FleetDevice d;
  d.name = std::move(name);
  d.library = &library;
  d.coordinated = true;
  d.make_policy = [&library, version]() -> std::unique_ptr<edge::ServingPolicy> {
    return std::make_unique<PinnedPolicy>(library, version);
  };
  return d;
}

std::vector<FleetDevice> homogeneous_devices(const core::AcceleratorLibrary& library,
                                             const core::RuntimeManagerConfig& manager, int count,
                                             core::PolicyKind kind) {
  require(count > 0, "homogeneous_devices needs a positive device count");
  std::vector<FleetDevice> devices;
  devices.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    devices.push_back(managed_device("dev" + std::to_string(i), library, manager, kind));
  }
  return devices;
}

}  // namespace adaflow::fleet
