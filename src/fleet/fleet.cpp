#include "adaflow/fleet/fleet.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "adaflow/common/error.hpp"
#include "adaflow/common/rng.hpp"
#include "adaflow/edge/device_sim.hpp"
#include "adaflow/sim/event_queue.hpp"

namespace adaflow::fleet {

namespace {

/// The Fixed-Pruning operating point of one library version (what a pinned
/// device runs, and what the coordinator reconfigures to).
edge::ServingMode fixed_mode_for(const core::AcceleratorLibrary& library, std::size_t version) {
  const core::ModelVersion& v = library.versions.at(version);
  edge::ServingMode mode;
  mode.model_version = v.version;
  mode.accelerator = "Fixed@" + v.version;
  mode.fps = v.fps_fixed;
  mode.accuracy = v.accuracy;
  mode.power_busy_w = v.power_busy_fixed_w;
  mode.power_idle_w = v.power_idle_fixed_w;
  return mode;
}

/// Index of \p version_name in \p library, or versions.size() when the
/// device currently runs a mode from a different library.
std::size_t find_version(const core::AcceleratorLibrary& library, const std::string& version_name) {
  for (std::size_t i = 0; i < library.versions.size(); ++i) {
    if (library.versions[i].version == version_name) {
      return i;
    }
  }
  return library.versions.size();
}

std::uint64_t device_seed(std::uint64_t fleet_seed, std::size_t index) {
  // Splitmix-style spreading so neighbouring devices get unrelated streams.
  return fleet_seed ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(index + 1));
}

/// The whole cluster on one event queue: N externally-driven DeviceSims, the
/// dispatcher (router + bounded ingress), the coordinator state machine, and
/// the fleet-level sampling. Lives on the stack of run_fleet().
struct FleetSim {
  const edge::WorkloadTrace& trace;
  const core::AcceleratorLibrary& fleet_library;
  const FleetConfig& config;
  RoutingPolicy& router;
  Rng rng;
  sim::EventQueue queue;

  std::vector<std::unique_ptr<edge::ServingPolicy>> policies;
  std::vector<std::unique_ptr<faults::FaultInjector>> injectors;  ///< null = fault-free
  std::vector<std::unique_ptr<edge::DeviceSim>> devices;
  /// Cleared while the coordinator drains/reconfigures a device.
  std::vector<char> accepting;

  /// Circuit-breaker state per device; a no-op observer when health
  /// monitoring is disabled (never observed, everything stays healthy).
  HealthMonitor monitor;
  /// Devices waiting for the dispatcher to route them a half-open probe.
  std::vector<char> probe_wanted;
  /// Dispatch timestamps of the frames waiting in each device's queue
  /// (front = oldest). Kept in lock-step with DeviceSim::queued(): pushed on
  /// dispatch, popped when a frame enters service (headroom callback) or is
  /// pulled back (quarantine drain / hedge).
  std::vector<std::deque<double>> queued_since;

  FleetMetrics metrics;
  std::int64_t ingress_count = 0;

  static constexpr std::size_t kNoExclude = static_cast<std::size_t>(-1);

  /// Arrival timestamps inside the coordinator's estimate window (only
  /// maintained when the coordinator is enabled).
  std::deque<double> recent_arrivals;

  /// Aggregate-rate forecaster driving predictive re-partitioning (set only
  /// when the coordinator runs with `predictive`).
  std::optional<forecast::ForecastTracker> coord_tracker;

  // Drain-and-reconfigure state machine. At most one device is ever out of
  // rotation; the paper's switch-interval rule spaces consecutive cycles.
  enum class CoordState { kIdle, kDraining, kReconfiguring };
  CoordState coord_state = CoordState::kIdle;
  std::size_t coord_device = 0;
  std::size_t coord_target = 0;
  double drain_started_s = 0.0;
  double last_repartition_end_s = -1e18;
  /// Aggregate FPS at the last evaluation where every coordinated device
  /// already matched its target. Hysteresis is measured against this — not
  /// against the last action — so a half-converged fleet (one device fixed,
  /// the next still mismatched at the same stable rate) keeps converging.
  double last_converged_fps = -1.0;

  // Fleet sample window: totals at the previous sample instant.
  std::int64_t snap_arrived = 0;
  std::int64_t snap_lost = 0;
  double snap_qoe = 0.0;

  FleetSim(const edge::WorkloadTrace& t, const core::AcceleratorLibrary& lib,
           const FleetConfig& c, RoutingPolicy& r, std::uint64_t seed)
      : trace(t), fleet_library(lib), config(c), router(r), rng(seed),
        monitor(c.health, c.devices.size()) {
    const std::size_t n = config.devices.size();
    policies.reserve(n);
    injectors.reserve(n);
    devices.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const FleetDevice& d = config.devices[i];
      policies.push_back(d.make_policy());
      require(policies.back() != nullptr,
              "fleet device '" + d.name + "' factory returned a null policy");
      if (d.fault_schedule.has_value()) {
        injectors.push_back(
            std::make_unique<faults::FaultInjector>(*d.fault_schedule, device_seed(seed, i)));
      } else {
        injectors.push_back(nullptr);
      }
      devices.push_back(std::make_unique<edge::DeviceSim>(queue, *policies.back(), d.server,
                                                          injectors.back().get(), d.name));
    }
    accepting.assign(n, 1);
    probe_wanted.assign(n, 0);
    queued_since.resize(n);
    metrics.workload_series.interval_s = config.sample_interval_s;
    metrics.loss_series.interval_s = config.sample_interval_s;
    metrics.qoe_series.interval_s = config.sample_interval_s;
    metrics.backlog_series.interval_s = config.sample_interval_s;
    if (config.coordinator.enabled && config.coordinator.predictive) {
      forecast::ForecastTrackerConfig fc = config.coordinator.forecast;
      fc.window_s = config.coordinator.poll_interval_s;
      coord_tracker.emplace(fc);
    }
  }

  const core::AcceleratorLibrary& device_library(std::size_t i) const {
    return config.devices[i].library != nullptr ? *config.devices[i].library : fleet_library;
  }

  // --- dispatcher ---------------------------------------------------------

  /// True when the monitor keeps device \p i out of the normal routing set.
  bool excluded(std::size_t i) const { return monitor.out_of_rotation(i); }

  /// Routes one frame to a device if any is eligible. Returns false (and
  /// touches nothing) when every device is drained, quarantined, or full.
  /// \p exclude additionally bars one device (hedging must not hand a frame
  /// back to the queue it was just pulled from).
  bool try_dispatch(std::size_t exclude = kNoExclude) {
    std::vector<DeviceStatus> statuses(devices.size());
    bool any_eligible = false;
    for (std::size_t i = 0; i < devices.size(); ++i) {
      const edge::DeviceSim& dev = *devices[i];
      DeviceStatus& s = statuses[i];
      s.eligible = accepting[i] != 0 && !excluded(i) && i != exclude && dev.free_slots() > 0;
      s.queued = dev.queued();
      s.capacity = dev.queue_capacity();
      s.busy = dev.processing();
      s.switching = dev.switch_in_flight();
      s.fps = dev.mode().fps;
      s.accuracy = dev.mode().accuracy;
      s.backlog_s = dev.backlog_seconds();
      any_eligible = any_eligible || s.eligible;
    }
    if (!any_eligible) {
      return false;
    }
    const std::size_t idx = router.route(queue.now(), statuses);
    require(idx < devices.size() && statuses[idx].eligible,
            "router '" + router.name() + "' returned an ineligible device");
    // Timestamp first: offer_frame may start service synchronously and fire
    // the headroom callback, which pops this very entry.
    queued_since[idx].push_back(queue.now());
    const bool taken = devices[idx]->offer_frame(/*count_loss=*/false);
    require(taken, "eligible device '" + devices[idx]->name() + "' rejected a frame");
    ++metrics.dispatched;
    return true;
  }

  /// Feeds one frame to a probing device as its half-open trial. Probes
  /// outrank normal routing so a recovering device is never starved by
  /// healthier peers. Returns true when the frame was consumed as a probe.
  bool try_probe_dispatch() {
    for (std::size_t i = 0; i < devices.size(); ++i) {
      if (probe_wanted[i] == 0 || devices[i]->free_slots() <= 0) {
        continue;
      }
      queued_since[i].push_back(queue.now());
      const bool taken = devices[i]->offer_frame(/*count_loss=*/false);
      if (!taken) {
        queued_since[i].pop_back();
        continue;
      }
      ++metrics.dispatched;
      probe_wanted[i] = 0;
      monitor.on_probe_dispatched(i, queue.now(), devices[i]->metrics().processed);
      return true;
    }
    return false;
  }

  /// Re-dispatches waiting ingress frames while headroom lasts. Invoked on
  /// every device headroom event and whenever a drained device rejoins.
  void drain_ingress() {
    while (ingress_count > 0 && (try_probe_dispatch() || try_dispatch())) {
      --ingress_count;
    }
  }

  /// A queued frame on device \p i moved into service.
  void on_device_headroom(std::size_t i) {
    if (!queued_since[i].empty()) {
      queued_since[i].pop_front();
    }
    drain_ingress();
  }

  void on_arrival() {
    ++metrics.arrived;
    if (config.coordinator.enabled) {
      recent_arrivals.push_back(queue.now());
    }
    // Waiting frames go first (they are indistinguishable, but keeping FIFO
    // order keeps the ingress counter an honest queue).
    if (ingress_count == 0 && (try_probe_dispatch() || try_dispatch())) {
      // Routed immediately.
    } else if (ingress_count < config.ingress_capacity) {
      ++ingress_count;
      drain_ingress();
    } else {
      ++metrics.ingress_lost;
    }
    schedule_next_arrival();
  }

  // --- health monitoring ---------------------------------------------------

  /// Pulls every waiting frame off a newly-quarantined device and routes it
  /// through the rest of the fleet. Frames that find no headroom wait at
  /// ingress; they count as re-dispatched, not lost — only overflowing the
  /// ingress queue itself loses them (genuine ingress_lost).
  void quarantine_drain(std::size_t i) {
    const std::int64_t pulled = devices[i]->take_queued(devices[i]->queued());
    queued_since[i].clear();
    for (std::int64_t k = 0; k < pulled; ++k) {
      ++metrics.redispatched;
      if (try_dispatch(i)) {
        continue;
      }
      if (ingress_count < config.ingress_capacity) {
        ++ingress_count;
      } else {
        ++metrics.ingress_lost;
      }
    }
  }

  /// Any device other than \p i that could take a hedged frame right now.
  bool any_other_eligible(std::size_t i) const {
    for (std::size_t j = 0; j < devices.size(); ++j) {
      if (j != i && accepting[j] != 0 && !excluded(j) && devices[j]->free_slots() > 0) {
        return true;
      }
    }
    return false;
  }

  void health_tick() {
    const double now = queue.now();
    for (std::size_t i = 0; i < devices.size(); ++i) {
      const edge::DeviceSim& dev = *devices[i];
      HealthMonitor::Observation obs;
      obs.processed = dev.metrics().processed;
      obs.has_work = dev.queued() > 0 || dev.processing();
      obs.in_maintenance =
          dev.switch_in_flight() || (coord_state != CoordState::kIdle && coord_device == i);
      obs.nominal_fps = dev.mode().fps;
      const HealthAction action = monitor.observe(i, now, obs);
      if (action.quarantine) {
        ++metrics.quarantines;
        if (coord_state != CoordState::kIdle && coord_device == i) {
          // The device the coordinator was cycling just got quarantined:
          // abort the cycle; the monitor owns the exclusion from here.
          accepting[i] = 1;
          coord_state = CoordState::kIdle;
          last_repartition_end_s = now;
        }
        quarantine_drain(i);
        // The fleet shrank: force the coordinator to re-balance the
        // survivors instead of sitting in its hysteresis band.
        last_converged_fps = -1.0;
      }
      if (action.want_probe) {
        probe_wanted[i] = 1;
      }
      if (action.probe_failed && devices[i]->take_queued(1) == 1) {
        // The probe frame is still sitting in the sick queue: reclaim it so
        // no frame is stuck for longer than one probe cycle.
        if (!queued_since[i].empty()) {
          queued_since[i].pop_front();
        }
        ++metrics.redispatched;
        if (!try_dispatch(i)) {
          if (ingress_count < config.ingress_capacity) {
            ++ingress_count;
          } else {
            ++metrics.ingress_lost;
          }
        }
      }
      if (action.rejoin) {
        ++metrics.rejoins;
        probe_wanted[i] = 0;
        // Capacity returned: re-balance, and drain any ingress backlog into
        // the recovered device.
        last_converged_fps = -1.0;
        drain_ingress();
      }
    }
    // Hedged re-dispatch: a frame stuck waiting past its budget is pulled
    // back and re-routed — but only when somewhere better exists right now
    // (hedging into a full fleet would just forfeit the frame's position).
    if (config.health.hedge_budget_s > 0.0) {
      for (std::size_t i = 0; i < devices.size(); ++i) {
        if (excluded(i)) {
          continue;  // quarantine drain already emptied it
        }
        while (!queued_since[i].empty() &&
               now - queued_since[i].front() >= config.health.hedge_budget_s &&
               any_other_eligible(i)) {
          if (devices[i]->take_queued(1) == 0) {
            break;
          }
          queued_since[i].pop_front();
          ++metrics.redispatched;
          ++metrics.hedged;
          const bool placed = try_dispatch(i);
          require(placed, "hedge re-dispatch failed despite an eligible device");
        }
      }
    }
    const double next = now + config.health.tick_interval_s;
    if (next <= trace.duration()) {
      queue.schedule_at(next, [this] { health_tick(); });
    }
  }

  void schedule_next_arrival() {
    const double rate = trace.rate_at(queue.now());
    if (rate <= 0.0) {
      // Re-check after the next rate boundary.
      queue.schedule_in(0.05, [this] { schedule_next_arrival(); });
      return;
    }
    const double when = queue.now() + rng.exponential(rate);
    if (when <= trace.duration()) {
      queue.schedule_at(when, [this] { on_arrival(); });
    }
  }

  // --- coordinator --------------------------------------------------------

  double aggregate_fps() {
    const double window = config.coordinator.estimate_window_s;
    const double cutoff = queue.now() - window;
    while (!recent_arrivals.empty() && recent_arrivals.front() < cutoff) {
      recent_arrivals.pop_front();
    }
    return static_cast<double>(recent_arrivals.size()) / window;
  }

  /// The rate the coordinator plans against: the measured aggregate, or —
  /// under predictive re-partitioning — the forecast-horizon rate floored at
  /// the measurement (a predicted fall never repartitions early; a predicted
  /// rise repartitions while the old rate still holds).
  double planning_rate(double measured) const {
    if (!coord_tracker.has_value() || coord_tracker->forecaster().observations() < 2) {
      return measured;
    }
    return std::max(measured, coord_tracker->current().rate);
  }

  void maybe_start_repartition(double now) {
    if (now < config.coordinator.warmup_s) {
      return;
    }
    const double agg = planning_rate(aggregate_fps());
    if (agg <= 0.0) {
      return;
    }
    if (last_converged_fps > 0.0 &&
        std::abs(agg - last_converged_fps) <
            config.coordinator.fps_hysteresis * last_converged_fps) {
      return;
    }
    // Quarantined devices are not capacity: the survivors' share grows and
    // the coordinator re-targets them to faster (lower-accuracy) versions.
    std::int64_t accepting_count = 0;
    for (std::size_t i = 0; i < devices.size(); ++i) {
      accepting_count += (accepting[i] != 0 && !excluded(i)) ? 1 : 0;
    }
    if (accepting_count == 0) {
      return;
    }
    const double share = agg / static_cast<double>(accepting_count);
    bool mismatch_blocked = false;
    for (std::size_t i = 0; i < devices.size(); ++i) {
      if (!config.devices[i].coordinated || accepting[i] == 0 || excluded(i) ||
          devices[i]->switch_in_flight()) {
        continue;
      }
      const core::AcceleratorLibrary& lib = device_library(i);
      const std::size_t target =
          core::select_library_version(lib, share, config.coordinator.accuracy_threshold,
                                       config.coordinator.fps_margin, /*use_flexible_fps=*/false);
      const std::size_t current = find_version(lib, devices[i]->mode().model_version);
      if (current == lib.versions.size() || target == current) {
        continue;
      }
      // The paper's switch-interval rule, cluster-wide: consecutive
      // repartition cycles keep their spacing even when a device is overdue.
      if (now - last_repartition_end_s <
          config.coordinator.switch_interval_factor * lib.reconfig_time_s) {
        mismatch_blocked = true;
        continue;
      }
      // Take this device out of rotation; the router spreads its share over
      // the rest of the fleet while the queue drains.
      accepting[i] = 0;
      coord_device = i;
      coord_target = target;
      drain_started_s = now;
      coord_state = CoordState::kDraining;
      return;
    }
    if (mismatch_blocked) {
      return;  // retry next tick once the spacing window opens
    }
    // Every coordinated device matches its target at this rate: record the
    // converged operating point the hysteresis band is centred on.
    last_converged_fps = agg;
  }

  void coordinator_tick() {
    const double now = queue.now();
    if (coord_tracker.has_value() && now >= config.coordinator.warmup_s) {
      // One observation per tick, regardless of the drain state machine, so
      // the forecaster sees an unbroken fixed-cadence series.
      coord_tracker->observe(aggregate_fps());
    }
    switch (coord_state) {
      case CoordState::kIdle:
        maybe_start_repartition(now);
        break;
      case CoordState::kDraining: {
        edge::DeviceSim& dev = *devices[coord_device];
        if (excluded(coord_device)) {
          // Quarantined mid-drain (health_tick may run between coordinator
          // ticks): abort the cycle, the monitor owns the device now.
          accepting[coord_device] = 1;
          coord_state = CoordState::kIdle;
          last_repartition_end_s = now;
          break;
        }
        if (dev.switch_in_flight()) {
          break;  // self-healing ladder busy (stall recovery); wait it out
        }
        if (dev.idle() || now - drain_started_s >= config.coordinator.drain_timeout_s) {
          const core::AcceleratorLibrary& lib = device_library(coord_device);
          edge::SwitchAction action;
          action.target = fixed_mode_for(lib, coord_target);
          action.switch_time_s = lib.reconfig_time_s;
          action.is_reconfiguration = true;
          dev.command_switch(action);
          coord_state = CoordState::kReconfiguring;
        }
        break;
      }
      case CoordState::kReconfiguring: {
        edge::DeviceSim& dev = *devices[coord_device];
        if (dev.switch_in_flight()) {
          break;
        }
        // The episode resolved — applied, or abandoned by the retry ladder.
        // Either way the device rejoins; only a successful cycle counts as a
        // repartition.
        if (find_version(device_library(coord_device), dev.mode().model_version) ==
            coord_target) {
          ++metrics.repartitions;
        }
        accepting[coord_device] = 1;
        last_repartition_end_s = now;
        coord_state = CoordState::kIdle;
        drain_ingress();
        break;
      }
    }
    const double next = now + config.coordinator.poll_interval_s;
    if (next <= trace.duration()) {
      queue.schedule_at(next, [this] { coordinator_tick(); });
    }
  }

  // --- cadences and sampling ----------------------------------------------

  void device_poll(std::size_t i) {
    devices[i]->poll();
    const double next = queue.now() + config.devices[i].server.poll_interval_s;
    if (next <= trace.duration()) {
      queue.schedule_at(next, [this, i] { device_poll(i); });
    }
  }

  void device_sample(std::size_t i) {
    devices[i]->sample_window();
    const double next = queue.now() + config.devices[i].server.sample_interval_s;
    if (next <= trace.duration() + 1e-9) {
      queue.schedule_at(next, [this, i] { device_sample(i); });
    }
  }

  void fleet_sample() {
    std::int64_t arrived_total = metrics.arrived;
    std::int64_t lost_total = metrics.ingress_lost;
    double qoe_total = 0.0;
    double worst_backlog_s = 0.0;
    for (const auto& dev : devices) {
      lost_total += dev->metrics().lost;
      qoe_total += dev->metrics().qoe_accuracy_sum;
      worst_backlog_s = std::max(worst_backlog_s, dev->backlog_seconds());
    }
    const std::int64_t d_arrived = arrived_total - snap_arrived;
    const std::int64_t d_lost = lost_total - snap_lost;
    const double d_qoe = qoe_total - snap_qoe;
    const double da = static_cast<double>(d_arrived);
    metrics.workload_series.values.push_back(da / config.sample_interval_s);
    metrics.loss_series.values.push_back(d_arrived > 0 ? static_cast<double>(d_lost) / da : 0.0);
    metrics.qoe_series.values.push_back(d_arrived > 0 ? d_qoe / da : 0.0);
    metrics.backlog_series.values.push_back(worst_backlog_s);
    snap_arrived = arrived_total;
    snap_lost = lost_total;
    snap_qoe = qoe_total;

    const double next = queue.now() + config.sample_interval_s;
    if (next <= trace.duration() + 1e-9) {
      queue.schedule_at(next, [this] { fleet_sample(); });
    }
  }

  // --- lifecycle ----------------------------------------------------------

  FleetMetrics run() {
    for (std::size_t i = 0; i < devices.size(); ++i) {
      devices[i]->start();
      devices[i]->set_on_headroom([this, i] { on_device_headroom(i); });
    }
    schedule_next_arrival();
    for (std::size_t i = 0; i < devices.size(); ++i) {
      const edge::ServerConfig& sc = config.devices[i].server;
      queue.schedule_at(sc.poll_interval_s, [this, i] { device_poll(i); });
      queue.schedule_at(sc.sample_interval_s, [this, i] { device_sample(i); });
    }
    queue.schedule_at(config.sample_interval_s, [this] { fleet_sample(); });
    if (config.coordinator.enabled) {
      queue.schedule_at(config.coordinator.poll_interval_s, [this] { coordinator_tick(); });
    }
    if (config.health.enabled) {
      queue.schedule_at(config.health.tick_interval_s, [this] { health_tick(); });
    }

    queue.run_until(trace.duration());

    const double duration = trace.duration();
    metrics.duration_s = duration;
    metrics.ingress_backlog = ingress_count;
    metrics.devices.reserve(devices.size());
    for (std::size_t i = 0; i < devices.size(); ++i) {
      devices[i]->finalize(duration);
      edge::RunMetrics& m = devices[i]->metrics();
      metrics.processed += m.processed;
      metrics.device_lost += m.lost;
      metrics.qoe_accuracy_sum += m.qoe_accuracy_sum;
      metrics.energy_j += m.energy_j;
      metrics.model_switches += m.model_switches;
      metrics.reconfigurations += m.reconfigurations;
      metrics.faults.accumulate(m.faults);
      FleetDeviceResult result;
      result.name = config.devices[i].name;
      result.queued_at_end = devices[i]->queued();
      result.quarantines = monitor.quarantines(i);
      result.rejoins = monitor.rejoins(i);
      result.final_health = monitor.state(i);
      result.metrics = std::move(m);
      metrics.devices.push_back(std::move(result));
    }
    metrics.tail_latency_p95_s = sim::percentile(metrics.backlog_series.values, 0.95);
    if (coord_tracker.has_value()) {
      metrics.forecast = coord_tracker->stats();
    }
    return std::move(metrics);
  }
};

}  // namespace

void FleetConfig::validate() const {
  if (devices.empty()) {
    throw ConfigError("FleetConfig.devices must not be empty");
  }
  for (std::size_t i = 0; i < devices.size(); ++i) {
    const FleetDevice& d = devices[i];
    const std::string who = "fleet device " + std::to_string(i) + " ('" + d.name + "')";
    if (d.name.empty()) {
      throw ConfigError("fleet device " + std::to_string(i) + " has an empty name");
    }
    if (!d.make_policy) {
      throw ConfigError(who + " has no make_policy factory");
    }
    if (d.server.queue_capacity <= 0) {
      throw ConfigError(who + ": server.queue_capacity must be positive");
    }
    if (!(d.server.poll_interval_s > 0.0)) {
      throw ConfigError(who + ": server.poll_interval_s must be positive");
    }
    if (!(d.server.sample_interval_s > 0.0)) {
      throw ConfigError(who + ": server.sample_interval_s must be positive");
    }
    if (d.library != nullptr && d.library->versions.empty()) {
      throw ConfigError(who + ": library has no versions");
    }
  }
  if (ingress_capacity < 0) {
    throw ConfigError("FleetConfig.ingress_capacity must be >= 0");
  }
  if (!(sample_interval_s > 0.0)) {
    throw ConfigError("FleetConfig.sample_interval_s must be positive");
  }
  if (coordinator.enabled) {
    if (!(coordinator.poll_interval_s > 0.0)) {
      throw ConfigError("FleetCoordinatorConfig.poll_interval_s must be positive");
    }
    if (!(coordinator.estimate_window_s > 0.0)) {
      throw ConfigError("FleetCoordinatorConfig.estimate_window_s must be positive");
    }
    if (coordinator.drain_timeout_s < 0.0) {
      throw ConfigError("FleetCoordinatorConfig.drain_timeout_s must be >= 0");
    }
    if (coordinator.switch_interval_factor < 0.0) {
      throw ConfigError("FleetCoordinatorConfig.switch_interval_factor must be >= 0");
    }
    if (coordinator.fps_hysteresis < 0.0) {
      throw ConfigError("FleetCoordinatorConfig.fps_hysteresis must be >= 0");
    }
  }
  if (health.enabled) {
    health.validate();
  }
}

PinnedPolicy::PinnedPolicy(const core::AcceleratorLibrary& library, std::size_t version)
    : library_(library), version_(version) {
  require(version < library.versions.size(),
          "pinned version index " + std::to_string(version) + " out of range (library has " +
              std::to_string(library.versions.size()) + " versions)");
}

edge::ServingMode PinnedPolicy::initial_mode() { return fixed_mode_for(library_, version_); }

FleetMetrics run_fleet(const edge::WorkloadTrace& trace, const core::AcceleratorLibrary& library,
                       const FleetConfig& config, RoutingPolicy& router, std::uint64_t seed) {
  config.validate();
  require(!library.versions.empty(), "fleet library has no versions");
  FleetSim sim(trace, library, config, router, seed);
  return sim.run();
}

FleetDevice managed_device(std::string name, const core::AcceleratorLibrary& library,
                           const core::RuntimeManagerConfig& manager, core::PolicyKind kind) {
  FleetDevice d;
  d.name = std::move(name);
  d.library = &library;
  d.make_policy = [&library, manager, kind] {
    return core::make_serving_policy(kind, library, manager);
  };
  return d;
}

FleetDevice pinned_device(std::string name, const core::AcceleratorLibrary& library,
                          std::size_t version) {
  FleetDevice d;
  d.name = std::move(name);
  d.library = &library;
  d.coordinated = true;
  d.make_policy = [&library, version]() -> std::unique_ptr<edge::ServingPolicy> {
    return std::make_unique<PinnedPolicy>(library, version);
  };
  return d;
}

std::vector<FleetDevice> homogeneous_devices(const core::AcceleratorLibrary& library,
                                             const core::RuntimeManagerConfig& manager, int count,
                                             core::PolicyKind kind) {
  require(count > 0, "homogeneous_devices needs a positive device count");
  std::vector<FleetDevice> devices;
  devices.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    devices.push_back(managed_device("dev" + std::to_string(i), library, manager, kind));
  }
  return devices;
}

}  // namespace adaflow::fleet
