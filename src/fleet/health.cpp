#include "adaflow/fleet/health.hpp"

#include <cmath>
#include <string>

#include "adaflow/common/error.hpp"

namespace adaflow::fleet {

const char* health_state_name(HealthState state) {
  switch (state) {
    case HealthState::kHealthy:
      return "healthy";
    case HealthState::kSuspect:
      return "suspect";
    case HealthState::kQuarantined:
      return "quarantined";
    case HealthState::kProbing:
      return "probing";
  }
  return "unknown";
}

void HealthConfig::validate() const {
  auto positive = [](double v, const char* field) {
    if (!(std::isfinite(v) && v > 0.0)) {
      throw ConfigError(std::string("HealthConfig.") + field + " must be positive");
    }
  };
  positive(tick_interval_s, "tick_interval_s");
  positive(suspect_timeout_s, "suspect_timeout_s");
  positive(quarantine_timeout_s, "quarantine_timeout_s");
  positive(probe_interval_s, "probe_interval_s");
  positive(probe_timeout_s, "probe_timeout_s");
  positive(rate_window_s, "rate_window_s");
  if (rejoin_probes < 1) {
    throw ConfigError("HealthConfig.rejoin_probes must be >= 1");
  }
  if (!(std::isfinite(degrade_rate_factor) && degrade_rate_factor >= 1.0)) {
    throw ConfigError("HealthConfig.degrade_rate_factor must be >= 1");
  }
  if (!(std::isfinite(hedge_budget_s) && hedge_budget_s >= 0.0)) {
    throw ConfigError("HealthConfig.hedge_budget_s must be >= 0 (0 disables hedging)");
  }
  if (hedge_duplicate && hedge_budget_s <= 0.0) {
    throw ConfigError("HealthConfig.hedge_duplicate requires hedge_budget_s > 0");
  }
}

HealthMonitor::HealthMonitor(const HealthConfig& config, std::size_t device_count)
    : config_(config) {
  config_.validate();
  devices_.resize(device_count);
}

/// Degrade detector: over a full rate window of continuously-busy ticks, the
/// completion rate should track the advertised mode FPS. Far below it (and
/// not explained by a switch or drain) the device is serving sick.
bool HealthMonitor::rate_too_slow(DeviceHealth& d, double now, const Observation& obs) {
  if (!obs.has_work || obs.in_maintenance || obs.nominal_fps <= 0.0) {
    d.rate_history.clear();
    return false;
  }
  d.rate_history.emplace_back(now, obs.processed);
  while (d.rate_history.size() > 1 && d.rate_history.front().first < now - config_.rate_window_s) {
    d.rate_history.pop_front();
  }
  const double span = now - d.rate_history.front().first;
  if (span < config_.rate_window_s * 0.5) {
    return false;  // not enough busy history to judge
  }
  const double rate =
      static_cast<double>(obs.processed - d.rate_history.front().second) / span;
  return rate < obs.nominal_fps / config_.degrade_rate_factor;
}

HealthAction HealthMonitor::observe(std::size_t i, double now, const Observation& obs) {
  require(i < devices_.size(), "HealthMonitor::observe: device index out of range");
  DeviceHealth& d = devices_[i];
  HealthAction action;
  const bool progressed = obs.processed > d.last_processed;
  d.last_processed = obs.processed;

  switch (d.state) {
    case HealthState::kHealthy:
    case HealthState::kSuspect: {
      // Progress, an empty plate, or expected maintenance downtime all reset
      // the stall clock — only "work waiting, nothing completing" counts.
      if (progressed || !obs.has_work || obs.in_maintenance) {
        d.last_progress_s = now;
      }
      const bool stalled = now - d.last_progress_s >= config_.suspect_timeout_s;
      const bool slow = rate_too_slow(d, now, obs);
      if (d.state == HealthState::kHealthy) {
        if (stalled || slow) {
          d.state = HealthState::kSuspect;
          d.suspect_since_s = now;
        }
      } else {
        if (!stalled && !slow) {
          d.state = HealthState::kHealthy;  // recovered on its own
        } else if (now - d.suspect_since_s >= config_.quarantine_timeout_s) {
          d.state = HealthState::kQuarantined;
          ++d.quarantines;
          d.last_probe_s = now;  // first probe waits a full probe interval
          d.probe_successes = 0;
          d.rate_history.clear();
          action.quarantine = true;
        }
      }
      break;
    }
    case HealthState::kQuarantined:
      if (now - d.last_probe_s >= config_.probe_interval_s) {
        d.state = HealthState::kProbing;
        d.probe_in_flight = false;
        action.want_probe = true;
      }
      break;
    case HealthState::kProbing:
      if (!d.probe_in_flight) {
        // Asked for a probe but the dispatcher had no frame to spare yet; a
        // zero-traffic fleet must not fail probes it never sent.
        action.want_probe = true;
      } else if (obs.processed > d.probe_baseline) {
        // The probe came back: one vote for recovery.
        d.probe_in_flight = false;
        ++d.probe_successes;
        if (d.probe_successes >= config_.rejoin_probes) {
          d.state = HealthState::kHealthy;
          ++d.rejoins;
          d.last_progress_s = now;
          d.rate_history.clear();
          action.rejoin = true;
        } else {
          action.want_probe = true;  // keep the half-open trickle going
        }
      } else if (now - d.probe_sent_s >= config_.probe_timeout_s) {
        // Probe swallowed: still sick. Back to quarantine, try again later;
        // the dispatcher reclaims the frame the probe left behind.
        d.probe_in_flight = false;
        d.probe_successes = 0;
        d.state = HealthState::kQuarantined;
        d.last_probe_s = now;
        action.probe_failed = true;
      }
      break;
  }
  return action;
}

bool HealthMonitor::force_quarantine(std::size_t i, double now) {
  require(i < devices_.size(), "HealthMonitor::force_quarantine: device index out of range");
  DeviceHealth& d = devices_[i];
  if (d.state == HealthState::kQuarantined || d.state == HealthState::kProbing) {
    return false;  // already out of rotation; nothing to drain
  }
  d.state = HealthState::kQuarantined;
  ++d.quarantines;
  d.last_probe_s = now;  // first probe waits a full probe interval
  d.probe_successes = 0;
  d.probe_in_flight = false;
  d.rate_history.clear();
  return true;
}

void HealthMonitor::on_probe_dispatched(std::size_t i, double now,
                                        std::int64_t processed_at_dispatch) {
  require(i < devices_.size(), "HealthMonitor::on_probe_dispatched: device index out of range");
  DeviceHealth& d = devices_[i];
  require(d.state == HealthState::kProbing,
          "on_probe_dispatched on a device that is not probing");
  d.probe_in_flight = true;
  d.probe_sent_s = now;
  d.probe_baseline = processed_at_dispatch;
}

}  // namespace adaflow::fleet
