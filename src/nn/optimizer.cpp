#include "adaflow/nn/optimizer.hpp"

#include "adaflow/common/error.hpp"

namespace adaflow::nn {

void Sgd::step(const std::vector<Param*>& params) {
  if (bound_.empty()) {
    bound_ = params;
    velocity_.reserve(params.size());
    for (Param* p : params) {
      velocity_.emplace_back(p->value.shape());
    }
  }
  require(bound_ == params, "optimizer bound to a different parameter set");

  for (std::size_t i = 0; i < params.size(); ++i) {
    Param& p = *params[i];
    Tensor& v = velocity_[i];
    for (std::int64_t j = 0; j < p.value.size(); ++j) {
      const float g = p.grad[j] + config_.weight_decay * p.value[j];
      v[j] = config_.momentum * v[j] - config_.lr * g;
      p.value[j] += v[j];
    }
  }
}

}  // namespace adaflow::nn
