#include "adaflow/nn/cnv.hpp"

#include <memory>

#include "adaflow/common/math.hpp"

namespace adaflow::nn {

namespace {
std::vector<std::int64_t> scaled_channels(std::int64_t scale_div) {
  require(scale_div >= 1, "cnv scale_div must be >= 1");
  const std::vector<std::int64_t> base{64, 64, 128, 128, 256, 256};
  std::vector<std::int64_t> out;
  out.reserve(base.size());
  for (std::int64_t c : base) {
    out.push_back(std::max<std::int64_t>(4, c / scale_div));
  }
  return out;
}
}  // namespace

CnvTopology cnv_w2a2(std::int64_t classes, std::int64_t scale_div) {
  CnvTopology t;
  t.name = "CNVW2A2";
  t.conv_channels = scaled_channels(scale_div);
  t.pool_after = {false, true, false, true, false, false};
  t.fc_features = {std::max<std::int64_t>(16, 512 / scale_div)};
  t.classes = classes;
  t.quant = QuantSpec{/*weight_bits=*/2, /*act_bits=*/2, /*act_scale=*/0.5f};
  return t;
}

CnvTopology cnv_w1a2(std::int64_t classes, std::int64_t scale_div) {
  CnvTopology t = cnv_w2a2(classes, scale_div);
  t.name = "CNVW1A2";
  t.quant.weight_bits = 1;
  return t;
}

std::vector<std::int64_t> cnv_spatial_dims(const CnvTopology& topology) {
  require(topology.conv_channels.size() == topology.pool_after.size(),
          "conv_channels / pool_after size mismatch");
  std::vector<std::int64_t> dims;
  std::int64_t d = topology.input[1];
  for (std::size_t i = 0; i < topology.conv_channels.size(); ++i) {
    d = d - 2;  // 3x3 VALID conv
    require(d >= 1, "cnv spatial dimension collapsed at conv " + std::to_string(i));
    if (topology.pool_after[i]) {
      require(d % 2 == 0, "cnv pool input dim must be even at conv " + std::to_string(i));
      d /= 2;
    }
    dims.push_back(d);
  }
  return dims;
}

Model build_cnv(const CnvTopology& topology, std::uint64_t seed) {
  Rng rng(seed);
  Model model(topology.name, topology.input);
  const std::vector<std::int64_t> dims = cnv_spatial_dims(topology);

  std::int64_t in_ch = topology.input[0];
  for (std::size_t i = 0; i < topology.conv_channels.size(); ++i) {
    const std::int64_t out_ch = topology.conv_channels[i];
    Conv2dConfig cfg;
    cfg.in_channels = in_ch;
    cfg.out_channels = out_ch;
    cfg.kernel = 3;
    cfg.stride = 1;
    cfg.pad = 0;
    const std::string tag = std::to_string(i);
    model.add(std::make_unique<Conv2d>("conv" + tag, cfg, topology.quant, rng));
    model.add(std::make_unique<BatchNorm>("bn" + tag, out_ch));
    model.add(std::make_unique<QuantAct>("act" + tag, topology.quant));
    if (topology.pool_after[i]) {
      model.add(std::make_unique<MaxPool2d>("pool" + tag, 2));
    }
    in_ch = out_ch;
  }

  std::int64_t features = in_ch * dims.back() * dims.back();
  for (std::size_t i = 0; i < topology.fc_features.size(); ++i) {
    const std::int64_t out_f = topology.fc_features[i];
    const std::string tag = std::to_string(i);
    model.add(std::make_unique<Linear>("fc" + tag, features, out_f, topology.quant, rng));
    model.add(std::make_unique<BatchNorm>("fc_bn" + tag, out_f));
    model.add(std::make_unique<QuantAct>("fc_act" + tag, topology.quant));
    features = out_f;
  }
  model.add(std::make_unique<Linear>("classifier", features, topology.classes, topology.quant, rng));
  return model;
}

}  // namespace adaflow::nn
