#include "adaflow/nn/trainer.hpp"

#include <algorithm>
#include <numeric>

#include "adaflow/nn/loss.hpp"

namespace adaflow::nn {

Tensor LabeledData::sample(std::int64_t i) const {
  const std::int64_t c = images.dim(1);
  const std::int64_t h = images.dim(2);
  const std::int64_t w = images.dim(3);
  Tensor out(Shape{1, c, h, w});
  const float* src = images.data() + i * c * h * w;
  std::copy(src, src + c * h * w, out.data());
  return out;
}

LabeledData LabeledData::subset(const std::vector<std::int64_t>& indices) const {
  const std::int64_t c = images.dim(1);
  const std::int64_t h = images.dim(2);
  const std::int64_t w = images.dim(3);
  LabeledData out;
  out.images = Tensor(Shape{static_cast<std::int64_t>(indices.size()), c, h, w});
  out.labels.reserve(indices.size());
  const std::int64_t stride = c * h * w;
  for (std::size_t k = 0; k < indices.size(); ++k) {
    const std::int64_t i = indices[k];
    std::copy(images.data() + i * stride, images.data() + (i + 1) * stride,
              out.images.data() + static_cast<std::int64_t>(k) * stride);
    out.labels.push_back(labels[static_cast<std::size_t>(i)]);
  }
  return out;
}

Tensor augment_batch(const Tensor& images, std::int64_t pad, Rng& rng) {
  const std::int64_t batch = images.dim(0);
  const std::int64_t c = images.dim(1);
  const std::int64_t h = images.dim(2);
  const std::int64_t w = images.dim(3);
  Tensor out(images.shape());

  for (std::int64_t n = 0; n < batch; ++n) {
    // Random crop offset within [-pad, pad] after zero padding.
    const std::int64_t dy = rng.uniform_int(-pad, pad);
    const std::int64_t dx = rng.uniform_int(-pad, pad);
    const bool flip = rng.bernoulli(0.5);
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* src = images.data() + (n * c + ch) * h * w;
      float* dst = out.data() + (n * c + ch) * h * w;
      for (std::int64_t y = 0; y < h; ++y) {
        const std::int64_t sy = y + dy;
        for (std::int64_t x = 0; x < w; ++x) {
          std::int64_t sx = x + dx;
          if (flip) {
            sx = w - 1 - sx;
          }
          const bool inside = sy >= 0 && sy < h && sx >= 0 && sx < w;
          dst[y * w + x] = inside ? src[sy * w + sx] : 0.0f;
        }
      }
    }
  }
  return out;
}

std::vector<EpochStats> Trainer::fit(Model& model, const LabeledData& train) {
  Rng rng(config_.seed);
  Sgd optimizer(SgdConfig{config_.lr, config_.momentum, config_.weight_decay});

  const std::int64_t count = train.count();
  std::vector<std::int64_t> order(static_cast<std::size_t>(count));
  std::iota(order.begin(), order.end(), 0);

  std::vector<EpochStats> stats;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    if (std::find(config_.lr_decay_epochs.begin(), config_.lr_decay_epochs.end(), epoch) !=
        config_.lr_decay_epochs.end()) {
      optimizer.set_lr(optimizer.lr() * config_.lr_decay);
    }
    rng.shuffle(order);

    double loss_sum = 0.0;
    std::int64_t correct = 0;
    std::int64_t seen = 0;
    for (std::int64_t start = 0; start < count; start += config_.batch_size) {
      const std::int64_t end = std::min(count, start + config_.batch_size);
      std::vector<std::int64_t> batch_idx(order.begin() + start, order.begin() + end);
      LabeledData batch = train.subset(batch_idx);
      Tensor images =
          config_.augment ? augment_batch(batch.images, config_.augment_pad, rng) : batch.images;

      model.zero_grad();
      Tensor logits = model.forward(images, /*training=*/true);
      LossResult loss = softmax_cross_entropy(logits, batch.labels);
      model.backward(loss.grad);
      optimizer.step(model.params());

      const std::int64_t batch_n = end - start;
      loss_sum += loss.loss * static_cast<double>(batch_n);
      correct += loss.correct;
      seen += batch_n;
    }
    stats.push_back(EpochStats{loss_sum / static_cast<double>(seen),
                               static_cast<double>(correct) / static_cast<double>(seen)});
  }
  return stats;
}

double Trainer::evaluate(Model& model, const LabeledData& data, std::int64_t batch_size) {
  const std::int64_t count = data.count();
  if (count == 0) {
    return 0.0;
  }
  std::int64_t correct = 0;
  for (std::int64_t start = 0; start < count; start += batch_size) {
    const std::int64_t end = std::min(count, start + batch_size);
    std::vector<std::int64_t> idx(static_cast<std::size_t>(end - start));
    std::iota(idx.begin(), idx.end(), start);
    LabeledData batch = data.subset(idx);
    Tensor logits = model.forward(batch.images, /*training=*/false);
    const std::vector<int> pred = argmax_rows(logits);
    for (std::size_t i = 0; i < pred.size(); ++i) {
      if (pred[i] == batch.labels[i]) {
        ++correct;
      }
    }
  }
  return static_cast<double>(correct) / static_cast<double>(count);
}

}  // namespace adaflow::nn
