#pragma once

/// \file conv2d.hpp
/// 2-D convolution with optional quantization-aware weights. Implemented as
/// im2col + GEMM; batch samples are processed in parallel.

#include "adaflow/nn/layer.hpp"
#include "adaflow/nn/quant.hpp"

namespace adaflow::nn {

/// Static configuration of a convolution layer.
struct Conv2dConfig {
  std::int64_t in_channels = 0;
  std::int64_t out_channels = 0;
  std::int64_t kernel = 3;
  std::int64_t stride = 1;
  std::int64_t pad = 0;
};

class Conv2d final : public Layer {
 public:
  /// Creates the layer with He-normal initialized shadow weights.
  Conv2d(std::string name, Conv2dConfig config, QuantSpec quant, Rng& rng);

  /// Creates the layer with externally supplied weights (used by the pruner
  /// when rebuilding a smaller model). \p weight is [out, in*k*k].
  Conv2d(std::string name, Conv2dConfig config, QuantSpec quant, Tensor weight);

  LayerKind kind() const override { return LayerKind::kConv2d; }
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override { return {&weight_}; }
  Shape output_shape(const Shape& input) const override;

  const Conv2dConfig& config() const { return config_; }
  const QuantSpec& quant() const { return quant_; }

  /// Shadow (float) weight matrix, shape [out_channels, in_channels*k*k].
  const Tensor& weight() const { return weight_.value; }
  Tensor& mutable_weight() { return weight_.value; }

  /// Weights as the forward pass sees them: quantized levels*scale when the
  /// layer is quantized, the shadow weights otherwise.
  Tensor effective_weight() const;

  /// Integer levels + scale for export to the HLS MVTU (requires quantized
  /// weights; throws otherwise).
  QuantizedWeights export_quantized() const;

  std::int64_t output_dim(std::int64_t input_dim) const;

 private:
  Conv2dConfig config_;
  QuantSpec quant_;
  Param weight_;

  // Forward caches for backward.
  Tensor cached_input_;
  Tensor cached_effective_weight_;
};

/// Copies one sample's [C,H,W] block into an im2col matrix with
/// [C*k*k] rows and [out_h*out_w] columns. Exposed for the HLS SWU tests.
void im2col(const float* input, std::int64_t channels, std::int64_t height, std::int64_t width,
            std::int64_t kernel, std::int64_t stride, std::int64_t pad, float* col);

/// Adjoint of im2col: scatters the column matrix back, accumulating overlaps.
void col2im(const float* col, std::int64_t channels, std::int64_t height, std::int64_t width,
            std::int64_t kernel, std::int64_t stride, std::int64_t pad, float* input);

}  // namespace adaflow::nn
