#pragma once

/// \file model.hpp
/// Sequential model container: owns layers, runs forward/backward across the
/// whole stack, and exposes the structural queries the pruner and the FINN
/// compiler need (conv/linear enumeration, shapes per layer).

#include <memory>
#include <string>
#include <vector>

#include "adaflow/nn/batchnorm.hpp"
#include "adaflow/nn/conv2d.hpp"
#include "adaflow/nn/layer.hpp"
#include "adaflow/nn/linear.hpp"
#include "adaflow/nn/maxpool2d.hpp"
#include "adaflow/nn/quant_act.hpp"

namespace adaflow::nn {

class Model {
 public:
  /// Empty model (the moved-from / not-yet-generated state); populate via
  /// move assignment before use.
  Model() = default;

  /// \p input_shape excludes the batch dimension: {C, H, W}.
  Model(std::string name, Shape input_shape);

  Model(Model&&) = default;
  Model& operator=(Model&&) = default;

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  const Shape& input_shape() const { return input_shape_; }

  /// Appends a layer; shapes are validated lazily on first forward.
  void add(LayerPtr layer);

  std::size_t size() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_.at(i); }
  const Layer& layer(std::size_t i) const { return *layers_.at(i); }

  /// Downcast accessor; throws NotFoundError on kind mismatch.
  template <typename T>
  T& layer_as(std::size_t i) {
    auto* p = dynamic_cast<T*>(layers_.at(i).get());
    if (p == nullptr) {
      throw NotFoundError("layer " + std::to_string(i) + " has unexpected kind");
    }
    return *p;
  }
  template <typename T>
  const T& layer_as(std::size_t i) const {
    const auto* p = dynamic_cast<const T*>(layers_.at(i).get());
    if (p == nullptr) {
      throw NotFoundError("layer " + std::to_string(i) + " has unexpected kind");
    }
    return *p;
  }

  /// Indices of all layers of the given kind, in graph order.
  std::vector<std::size_t> indices_of(LayerKind kind) const;

  /// Shape (with batch dim N) after each layer for a batch of size \p batch.
  std::vector<Shape> shapes_for_batch(std::int64_t batch) const;

  /// Runs the full stack. \p input is [N, C, H, W].
  Tensor forward(const Tensor& input, bool training);

  /// Backpropagates the loss gradient through every layer.
  void backward(const Tensor& grad_output);

  /// All trainable parameters in graph order.
  std::vector<Param*> params();

  void zero_grad();

  /// Number of scalar parameters.
  std::int64_t param_count() const;

  /// Multiply-accumulate operations for one inference (conv + linear).
  std::int64_t mac_count() const;

 private:
  std::string name_;
  Shape input_shape_;
  std::vector<LayerPtr> layers_;
};

}  // namespace adaflow::nn
