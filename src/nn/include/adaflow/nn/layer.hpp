#pragma once

/// \file layer.hpp
/// Layer interface for the sequential training graph. Layers own their
/// parameters (value + gradient pairs) and cache whatever the backward pass
/// needs during forward.

#include <memory>
#include <string>
#include <vector>

#include "adaflow/nn/tensor.hpp"

namespace adaflow::nn {

/// A trainable parameter: value and accumulated gradient of equal shape.
struct Param {
  Tensor value;
  Tensor grad;

  explicit Param(Tensor v) : value(std::move(v)), grad(value.shape()) {}
  Param() = default;

  void zero_grad() { grad.fill(0.0f); }
};

/// Kind tags used by the compiler/pruner to walk the graph structurally.
enum class LayerKind {
  kConv2d,
  kLinear,
  kMaxPool2d,
  kBatchNorm,
  kQuantAct,
};

const char* layer_kind_name(LayerKind kind);

/// Abstract sequential layer.
class Layer {
 public:
  explicit Layer(std::string name) : name_(std::move(name)) {}
  virtual ~Layer() = default;

  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  const std::string& name() const { return name_; }
  virtual LayerKind kind() const = 0;

  /// Computes the layer output. When \p training is true the layer caches
  /// activations for backward and uses batch statistics where relevant.
  virtual Tensor forward(const Tensor& input, bool training) = 0;

  /// Propagates \p grad_output to the input, accumulating parameter grads.
  /// Must follow a forward(…, training=true) on the same batch.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Trainable parameters (empty for stateless layers).
  virtual std::vector<Param*> params() { return {}; }

  /// Output shape for a given input shape (batch dim included).
  virtual Shape output_shape(const Shape& input) const = 0;

 private:
  std::string name_;
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace adaflow::nn
