#pragma once

/// \file data.hpp
/// Lightweight labeled-image container exchanged between the dataset
/// generators and the trainer (keeps adaflow_nn independent of
/// adaflow_datasets).

#include <vector>

#include "adaflow/nn/tensor.hpp"

namespace adaflow::nn {

/// A set of images [N, C, H, W] with integer class labels of length N.
struct LabeledData {
  Tensor images;
  std::vector<int> labels;

  std::int64_t count() const { return images.empty() ? 0 : images.dim(0); }

  /// Copies sample \p i into a [1, C, H, W] tensor.
  Tensor sample(std::int64_t i) const;

  /// Copies the index-selected subset (used for batching and splits).
  LabeledData subset(const std::vector<std::int64_t>& indices) const;
};

}  // namespace adaflow::nn
