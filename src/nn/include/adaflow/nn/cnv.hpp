#pragma once

/// \file cnv.hpp
/// Builders for the paper's CNN models: CNV-W2A2 and CNV-W1A2 (the FINN CNV
/// topology — six 3x3 VALID convolutions with pooling after the 2nd and 4th,
/// followed by a fully-connected head).
///
/// The channel widths are divided by a scale factor (default 8) so that the
/// full 18-model pruning library retrains in CPU-minutes; see DESIGN.md
/// ("Substitutions"). scale_div = 1 reproduces the original widths.

#include <string>
#include <vector>

#include "adaflow/nn/model.hpp"

namespace adaflow::nn {

/// Declarative description of a CNV-style network.
struct CnvTopology {
  std::string name;
  Shape input{3, 32, 32};
  std::vector<std::int64_t> conv_channels;  ///< output channels per conv layer
  std::vector<bool> pool_after;             ///< 2x2 max-pool after this conv?
  std::vector<std::int64_t> fc_features;    ///< hidden FC widths
  std::int64_t classes = 10;
  QuantSpec quant;
};

/// CNV with 2-bit weights / 2-bit activations (paper's CNVW2A2).
CnvTopology cnv_w2a2(std::int64_t classes, std::int64_t scale_div = 8);

/// CNV with 1-bit weights / 2-bit activations (paper's CNVW1A2).
CnvTopology cnv_w1a2(std::int64_t classes, std::int64_t scale_div = 8);

/// Instantiates the model: per conv block Conv2d -> BatchNorm -> QuantAct
/// (-> MaxPool2d), per hidden FC Linear -> BatchNorm -> QuantAct, and a final
/// Linear classifier.
Model build_cnv(const CnvTopology& topology, std::uint64_t seed);

/// Spatial dimension of each conv layer's output for the given topology
/// (sanity helper; throws if any dimension collapses below 1).
std::vector<std::int64_t> cnv_spatial_dims(const CnvTopology& topology);

}  // namespace adaflow::nn
