#pragma once

/// \file linear.hpp
/// Fully-connected layer with optional quantization-aware weights. Accepts
/// rank-2 [N, in] or rank-4 [N, C, H, W] input (flattened internally, which
/// is how the CNV topology feeds its classifier head).

#include "adaflow/nn/layer.hpp"
#include "adaflow/nn/quant.hpp"

namespace adaflow::nn {

class Linear final : public Layer {
 public:
  Linear(std::string name, std::int64_t in_features, std::int64_t out_features, QuantSpec quant,
         Rng& rng);
  Linear(std::string name, std::int64_t in_features, std::int64_t out_features, QuantSpec quant,
         Tensor weight);

  LayerKind kind() const override { return LayerKind::kLinear; }
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override { return {&weight_}; }
  Shape output_shape(const Shape& input) const override;

  std::int64_t in_features() const { return in_features_; }
  std::int64_t out_features() const { return out_features_; }
  const QuantSpec& quant() const { return quant_; }

  /// Shadow weight matrix, shape [out_features, in_features].
  const Tensor& weight() const { return weight_.value; }
  Tensor& mutable_weight() { return weight_.value; }

  Tensor effective_weight() const;
  QuantizedWeights export_quantized() const;

 private:
  std::int64_t in_features_;
  std::int64_t out_features_;
  QuantSpec quant_;
  Param weight_;

  Tensor cached_input_;  // flattened [N, in]
  Shape cached_input_shape_;
  Tensor cached_effective_weight_;
};

}  // namespace adaflow::nn
