#pragma once

/// \file quant.hpp
/// Quantization-aware-training primitives (the Brevitas substitute).
///
/// Weights keep a float "shadow" copy; the forward pass sees quantized values
/// and gradients flow to the shadow through a straight-through estimator
/// (STE). Supported weight precisions match the paper's models: 1-bit
/// (CNVW1A2) and 2-bit narrow-range (CNVW2A2). Activations use unsigned
/// uniform quantization (2-bit for both models).

#include <cstdint>

#include "adaflow/nn/tensor.hpp"

namespace adaflow::nn {

/// Per-layer quantization configuration.
struct QuantSpec {
  /// Weight bit-width: 0 = float (no quantization), 1 = binary {-1,+1},
  /// 2 = narrow-range 2-bit {-1, 0, +1}.
  int weight_bits = 0;
  /// Activation bit-width for QuantAct layers: 0 = plain ReLU, else n-bit
  /// unsigned levels {0 .. 2^n - 1} * act_scale.
  int act_bits = 0;
  /// Step size of the activation quantizer.
  float act_scale = 0.5f;

  bool quantized_weights() const { return weight_bits > 0; }
  bool quantized_acts() const { return act_bits > 0; }
};

/// Result of quantizing a weight tensor: integer levels plus a common scale,
/// so that w_q = scale * level. The levels are what the HLS MVTU consumes.
struct QuantizedWeights {
  Tensor levels;  ///< integer-valued floats in {-1, 0, +1} (or {-1,+1} for 1-bit)
  float scale = 1.0f;
};

/// Quantizes \p shadow to \p bits (1 or 2). The scale is the mean absolute
/// value of the tensor (the ℓ1 heuristic used by BinaryConnect/Brevitas),
/// which keeps the quantizer zero-free for 1-bit and symmetric for 2-bit.
QuantizedWeights quantize_weights(const Tensor& shadow, int bits);

/// Integer level of a single value under the weight quantizer.
float quantize_weight_level(float value, float scale, int bits);

/// Maximum integer activation level for a bit-width (2 bits -> 3).
constexpr std::int64_t act_level_max(int bits) { return (std::int64_t{1} << bits) - 1; }

/// Forward value of the activation quantizer: clamp(round(x / s), 0, max) * s.
float quantize_act(float x, float scale, int bits);

/// Integer level the activation quantizer assigns to \p x.
std::int64_t quantize_act_level(float x, float scale, int bits);

/// STE gradient mask for the activation quantizer: 1 inside the representable
/// range (pre-activation between 0 and (max + 0.5) * scale), else 0.
float act_ste_mask(float x, float scale, int bits);

}  // namespace adaflow::nn
