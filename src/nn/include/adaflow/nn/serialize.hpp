#pragma once

/// \file serialize.hpp
/// Binary model save/load — the reproduction's stand-in for the ONNX export
/// step of the paper's pruning flow. Round-trips the full training state
/// (shadow weights, BN statistics, quant specs) of a sequential model.

#include <iosfwd>
#include <string>

#include "adaflow/nn/model.hpp"

namespace adaflow::nn {

/// Writes \p model to a stream in the AdaFlow binary format.
void save_model(const Model& model, std::ostream& out);

/// Reads a model previously written by save_model. Throws Error on a
/// malformed stream.
Model load_model(std::istream& in);

/// File-path convenience wrappers.
void save_model_file(const Model& model, const std::string& path);
Model load_model_file(const std::string& path);

}  // namespace adaflow::nn
