#pragma once

/// \file trainer.hpp
/// Mini-batch training loop with the paper's augmentation (pad, random crop,
/// horizontal flip) and step LR decay, plus top-1 evaluation.

#include <cstdint>

#include "adaflow/common/rng.hpp"
#include "adaflow/nn/data.hpp"
#include "adaflow/nn/model.hpp"
#include "adaflow/nn/optimizer.hpp"

namespace adaflow::nn {

struct TrainConfig {
  int epochs = 10;
  std::int64_t batch_size = 32;
  float lr = 0.01f;
  float momentum = 0.9f;
  float weight_decay = 1e-4f;
  /// Multiply lr by this factor at each epoch listed in lr_decay_epochs.
  float lr_decay = 0.1f;
  std::vector<int> lr_decay_epochs;
  /// Pad-crop-flip augmentation (the paper's "standard data augmentation").
  bool augment = true;
  std::int64_t augment_pad = 2;
  std::uint64_t seed = 1;
};

struct EpochStats {
  double train_loss = 0.0;
  double train_accuracy = 0.0;
};

class Trainer {
 public:
  explicit Trainer(TrainConfig config) : config_(config) {}

  /// Trains \p model in place; returns per-epoch stats.
  std::vector<EpochStats> fit(Model& model, const LabeledData& train);

  /// Top-1 accuracy of \p model on \p data (inference mode), in [0, 1].
  static double evaluate(Model& model, const LabeledData& data,
                         std::int64_t batch_size = 64);

 private:
  TrainConfig config_;
};

/// Pad-crop-flip augmentation of a batch (out-of-place).
Tensor augment_batch(const Tensor& images, std::int64_t pad, Rng& rng);

}  // namespace adaflow::nn
