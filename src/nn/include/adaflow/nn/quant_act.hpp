#pragma once

/// \file quant_act.hpp
/// Activation layer: n-bit unsigned uniform quantizer with straight-through
/// gradients (act_bits > 0), or a plain ReLU (act_bits == 0, the float
/// baseline).

#include "adaflow/nn/layer.hpp"
#include "adaflow/nn/quant.hpp"

namespace adaflow::nn {

class QuantAct final : public Layer {
 public:
  QuantAct(std::string name, QuantSpec quant);

  LayerKind kind() const override { return LayerKind::kQuantAct; }
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  Shape output_shape(const Shape& input) const override { return input; }

  const QuantSpec& quant() const { return quant_; }

 private:
  QuantSpec quant_;
  Tensor cached_input_;
};

}  // namespace adaflow::nn
