#pragma once

/// \file loss.hpp
/// Softmax cross-entropy loss and top-1 accuracy.

#include <cstdint>
#include <vector>

#include "adaflow/nn/tensor.hpp"

namespace adaflow::nn {

/// Result of a loss evaluation over one batch.
struct LossResult {
  double loss = 0.0;     ///< mean cross-entropy over the batch
  std::int64_t correct = 0;  ///< top-1 hits in the batch
  Tensor grad;           ///< d(mean loss)/d(logits), same shape as logits
};

/// Computes softmax cross-entropy on logits [N, classes] against labels.
LossResult softmax_cross_entropy(const Tensor& logits, const std::vector<int>& labels);

/// Top-1 predictions for logits [N, classes].
std::vector<int> argmax_rows(const Tensor& logits);

}  // namespace adaflow::nn
