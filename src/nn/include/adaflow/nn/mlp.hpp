#pragma once

/// \file mlp.hpp
/// Fully-connected topologies in the FINN family: TFC/SFC-style quantized
/// MLPs (Linear -> BatchNorm -> QuantAct per hidden layer, bare Linear
/// classifier). These exercise the pure-FC dataflow path (no SWU, no pool)
/// and, combined with PruneOptions::prune_fc_neurons, the neuron-pruning
/// branch of the dataflow-aware pruner.

#include <string>
#include <vector>

#include "adaflow/nn/model.hpp"

namespace adaflow::nn {

struct MlpTopology {
  std::string name;
  Shape input{1, 28, 28};
  std::vector<std::int64_t> hidden;  ///< neurons per hidden layer
  std::int64_t classes = 10;
  QuantSpec quant;
};

/// FINN's TFC with 1-bit weights / 2-bit activations, width-scaled
/// (original hidden widths are 64-64-64; scale_div shrinks them, floor 16).
MlpTopology tfc_w1a2(std::int64_t classes, std::int64_t scale_div = 1);

/// Larger SFC-style variant (256-wide hidden layers before scaling).
MlpTopology sfc_w1a2(std::int64_t classes, std::int64_t scale_div = 4);

/// Instantiates the model.
Model build_mlp(const MlpTopology& topology, std::uint64_t seed);

}  // namespace adaflow::nn
