#pragma once

/// \file optimizer.hpp
/// SGD with momentum and decoupled weight decay — the retraining optimizer
/// used after every pruning step (paper: lr 0.001, decay 0.1).

#include <vector>

#include "adaflow/nn/layer.hpp"

namespace adaflow::nn {

struct SgdConfig {
  float lr = 0.01f;
  float momentum = 0.9f;
  float weight_decay = 0.0f;
};

class Sgd {
 public:
  explicit Sgd(SgdConfig config) : config_(config) {}

  float lr() const { return config_.lr; }
  void set_lr(float lr) { config_.lr = lr; }

  /// Applies one update to each parameter from its accumulated gradient.
  /// Velocity buffers are keyed by parameter identity (pointer), so the same
  /// optimizer instance must be reused across steps of one model.
  void step(const std::vector<Param*>& params);

 private:
  SgdConfig config_;
  std::vector<Tensor> velocity_;
  std::vector<Param*> bound_;
};

}  // namespace adaflow::nn
