#pragma once

/// \file maxpool2d.hpp
/// Channelwise max pooling (kernel == stride, the FINN MaxPool shape).

#include "adaflow/nn/layer.hpp"

namespace adaflow::nn {

class MaxPool2d final : public Layer {
 public:
  MaxPool2d(std::string name, std::int64_t kernel);

  LayerKind kind() const override { return LayerKind::kMaxPool2d; }
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  Shape output_shape(const Shape& input) const override;

  std::int64_t kernel() const { return kernel_; }

 private:
  std::int64_t kernel_;
  Shape cached_input_shape_;
  std::vector<std::int64_t> argmax_;  // flat input index per output element
};

}  // namespace adaflow::nn
