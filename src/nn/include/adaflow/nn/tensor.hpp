#pragma once

/// \file tensor.hpp
/// Dense float tensor in NCHW layout, the numeric workhorse of the training
/// substrate. Deliberately minimal: contiguous storage, shape bookkeeping,
/// and the indexing helpers the layers need — no views, no broadcasting.

#include <cstdint>
#include <string>
#include <vector>

#include "adaflow/common/error.hpp"
#include "adaflow/common/rng.hpp"

namespace adaflow::nn {

using Shape = std::vector<std::int64_t>;

/// Contiguous float tensor with row-major (last index fastest) layout.
class Tensor {
 public:
  Tensor() = default;

  /// Allocates a zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Allocates and fills with \p value.
  Tensor(Shape shape, float value);

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor full(Shape shape, float value) { return Tensor(std::move(shape), value); }

  /// He-normal initialization for a weight tensor with \p fan_in inputs.
  static Tensor he_normal(Shape shape, std::int64_t fan_in, Rng& rng);

  /// Uniform random values in [lo, hi).
  static Tensor uniform(Shape shape, float lo, float hi, Rng& rng);

  const Shape& shape() const { return shape_; }
  std::int64_t rank() const { return static_cast<std::int64_t>(shape_.size()); }
  std::int64_t dim(std::int64_t i) const { return shape_.at(static_cast<std::size_t>(i)); }
  std::int64_t size() const { return static_cast<std::int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& operator[](std::int64_t i) { return data_[static_cast<std::size_t>(i)]; }
  float operator[](std::int64_t i) const { return data_[static_cast<std::size_t>(i)]; }

  /// 4-D accessor (n, c, h, w); the tensor must be rank 4.
  float& at4(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) {
    return data_[static_cast<std::size_t>(index4(n, c, h, w))];
  }
  float at4(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) const {
    return data_[static_cast<std::size_t>(index4(n, c, h, w))];
  }

  /// 2-D accessor (r, c); the tensor must be rank 2.
  float& at2(std::int64_t r, std::int64_t c) {
    return data_[static_cast<std::size_t>(r * shape_[1] + c)];
  }
  float at2(std::int64_t r, std::int64_t c) const {
    return data_[static_cast<std::size_t>(r * shape_[1] + c)];
  }

  /// Linear index of (n, c, h, w).
  std::int64_t index4(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) const {
    return ((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w;
  }

  /// Sets every element to \p value.
  void fill(float value);

  /// Reinterprets the tensor with a new shape of identical element count.
  Tensor reshaped(Shape new_shape) const;

  /// Element count sanity: product of dims.
  static std::int64_t element_count(const Shape& shape);

  /// Human-readable shape, e.g. "[64, 3, 32, 32]".
  std::string shape_string() const;

 private:
  Shape shape_;
  std::vector<float> data_;
};

/// Throws ShapeError unless the two shapes are identical.
void check_same_shape(const Tensor& a, const Tensor& b, const std::string& context);

}  // namespace adaflow::nn
