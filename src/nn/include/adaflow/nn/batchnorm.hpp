#pragma once

/// \file batchnorm.hpp
/// Batch normalization over the channel axis (rank-4 input) or the feature
/// axis (rank-2 input). At inference time the affine transform collapses to
/// per-channel scale/shift, which is what the FINN threshold-folding step in
/// src/hls consumes.

#include "adaflow/nn/layer.hpp"

namespace adaflow::nn {

/// Per-channel affine form of a trained BatchNorm: y = scale*x + shift.
struct AffineChannel {
  std::vector<float> scale;
  std::vector<float> shift;
};

class BatchNorm final : public Layer {
 public:
  BatchNorm(std::string name, std::int64_t channels, float momentum = 0.1f, float eps = 1e-5f);

  LayerKind kind() const override { return LayerKind::kBatchNorm; }
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override { return {&gamma_, &beta_}; }
  Shape output_shape(const Shape& input) const override;

  std::int64_t channels() const { return channels_; }

  /// Inference-time per-channel scale/shift from the running statistics.
  AffineChannel inference_affine() const;

  // Raw accessors used by serialization and the pruner.
  const Tensor& gamma() const { return gamma_.value; }
  const Tensor& beta() const { return beta_.value; }
  const std::vector<float>& running_mean() const { return running_mean_; }
  const std::vector<float>& running_var() const { return running_var_; }
  void set_statistics(std::vector<float> mean, std::vector<float> var);
  void set_affine(Tensor gamma, Tensor beta);
  float eps() const { return eps_; }

 private:
  std::int64_t channels_;
  float momentum_;
  float eps_;
  Param gamma_;
  Param beta_;
  std::vector<float> running_mean_;
  std::vector<float> running_var_;

  // Forward caches (training mode).
  Tensor cached_normalized_;
  std::vector<float> cached_batch_std_;
  std::int64_t cached_per_channel_ = 0;
};

}  // namespace adaflow::nn
