#pragma once

/// \file gemm.hpp
/// Small row-major GEMM kernels shared by Conv2d (im2col) and Linear.
/// Loop order (m, k, n) keeps the inner loop streaming over contiguous B/C
/// rows, which is the main thing that matters at these sizes.

#include <cstdint>

namespace adaflow::nn {

/// C[M,N] += A[M,K] * B[K,N]
inline void gemm_nn(std::int64_t m_count, std::int64_t n_count, std::int64_t k_count,
                    const float* a, const float* b, float* c) {
  for (std::int64_t m = 0; m < m_count; ++m) {
    float* c_row = c + m * n_count;
    const float* a_row = a + m * k_count;
    for (std::int64_t k = 0; k < k_count; ++k) {
      const float a_val = a_row[k];
      if (a_val == 0.0f) {
        continue;  // quantized weights are often exactly zero
      }
      const float* b_row = b + k * n_count;
      for (std::int64_t n = 0; n < n_count; ++n) {
        c_row[n] += a_val * b_row[n];
      }
    }
  }
}

/// C[M,N] += A[M,K] * B[N,K]^T
inline void gemm_nt(std::int64_t m_count, std::int64_t n_count, std::int64_t k_count,
                    const float* a, const float* b, float* c) {
  for (std::int64_t m = 0; m < m_count; ++m) {
    const float* a_row = a + m * k_count;
    float* c_row = c + m * n_count;
    for (std::int64_t n = 0; n < n_count; ++n) {
      const float* b_row = b + n * k_count;
      float acc = 0.0f;
      for (std::int64_t k = 0; k < k_count; ++k) {
        acc += a_row[k] * b_row[k];
      }
      c_row[n] += acc;
    }
  }
}

/// C[M,N] += A[K,M]^T * B[K,N]
inline void gemm_tn(std::int64_t m_count, std::int64_t n_count, std::int64_t k_count,
                    const float* a, const float* b, float* c) {
  for (std::int64_t k = 0; k < k_count; ++k) {
    const float* a_row = a + k * m_count;
    const float* b_row = b + k * n_count;
    for (std::int64_t m = 0; m < m_count; ++m) {
      const float a_val = a_row[m];
      if (a_val == 0.0f) {
        continue;
      }
      float* c_row = c + m * n_count;
      for (std::int64_t n = 0; n < n_count; ++n) {
        c_row[n] += a_val * b_row[n];
      }
    }
  }
}

}  // namespace adaflow::nn
