#include "adaflow/nn/loss.hpp"

#include <algorithm>
#include <cmath>

#include "adaflow/common/error.hpp"

namespace adaflow::nn {

LossResult softmax_cross_entropy(const Tensor& logits, const std::vector<int>& labels) {
  require(logits.rank() == 2, "loss expects rank-2 logits");
  const std::int64_t batch = logits.dim(0);
  const std::int64_t classes = logits.dim(1);
  require(static_cast<std::int64_t>(labels.size()) == batch, "labels/batch mismatch");

  LossResult result;
  result.grad = Tensor(logits.shape());
  double total = 0.0;

  for (std::int64_t n = 0; n < batch; ++n) {
    const float* row = logits.data() + n * classes;
    float* grow = result.grad.data() + n * classes;
    const int label = labels[static_cast<std::size_t>(n)];
    require(label >= 0 && label < classes, "label out of range");

    float max_logit = row[0];
    std::int64_t arg = 0;
    for (std::int64_t c = 1; c < classes; ++c) {
      if (row[c] > max_logit) {
        max_logit = row[c];
        arg = c;
      }
    }
    if (arg == label) {
      ++result.correct;
    }

    double denom = 0.0;
    for (std::int64_t c = 0; c < classes; ++c) {
      denom += std::exp(static_cast<double>(row[c] - max_logit));
    }
    const double log_denom = std::log(denom);
    total += -(static_cast<double>(row[label] - max_logit) - log_denom);

    for (std::int64_t c = 0; c < classes; ++c) {
      const double p = std::exp(static_cast<double>(row[c] - max_logit)) / denom;
      grow[c] = static_cast<float>((p - (c == label ? 1.0 : 0.0)) / static_cast<double>(batch));
    }
  }
  result.loss = total / static_cast<double>(batch);
  return result;
}

std::vector<int> argmax_rows(const Tensor& logits) {
  require(logits.rank() == 2, "argmax expects rank-2 logits");
  const std::int64_t batch = logits.dim(0);
  const std::int64_t classes = logits.dim(1);
  std::vector<int> out(static_cast<std::size_t>(batch));
  for (std::int64_t n = 0; n < batch; ++n) {
    const float* row = logits.data() + n * classes;
    out[static_cast<std::size_t>(n)] =
        static_cast<int>(std::max_element(row, row + classes) - row);
  }
  return out;
}

}  // namespace adaflow::nn
