#include "adaflow/nn/mlp.hpp"

#include <memory>

#include "adaflow/common/math.hpp"

namespace adaflow::nn {

namespace {
std::vector<std::int64_t> scaled(std::vector<std::int64_t> widths, std::int64_t scale_div) {
  require(scale_div >= 1, "mlp scale_div must be >= 1");
  for (auto& w : widths) {
    w = std::max<std::int64_t>(16, w / scale_div);
  }
  return widths;
}
}  // namespace

MlpTopology tfc_w1a2(std::int64_t classes, std::int64_t scale_div) {
  MlpTopology t;
  t.name = "TFCW1A2";
  t.hidden = scaled({64, 64, 64}, scale_div);
  t.classes = classes;
  t.quant = QuantSpec{/*weight_bits=*/1, /*act_bits=*/2, /*act_scale=*/0.5f};
  return t;
}

MlpTopology sfc_w1a2(std::int64_t classes, std::int64_t scale_div) {
  MlpTopology t = tfc_w1a2(classes, 1);
  t.name = "SFCW1A2";
  t.hidden = scaled({256, 256, 256}, scale_div);
  return t;
}

Model build_mlp(const MlpTopology& topology, std::uint64_t seed) {
  require(!topology.hidden.empty(), "mlp needs at least one hidden layer");
  Rng rng(seed);
  Model model(topology.name, topology.input);
  std::int64_t features = topology.input[0] * topology.input[1] * topology.input[2];
  for (std::size_t i = 0; i < topology.hidden.size(); ++i) {
    const std::int64_t width = topology.hidden[i];
    const std::string tag = std::to_string(i);
    model.add(std::make_unique<Linear>("fc" + tag, features, width, topology.quant, rng));
    model.add(std::make_unique<BatchNorm>("fc_bn" + tag, width));
    model.add(std::make_unique<QuantAct>("fc_act" + tag, topology.quant));
    features = width;
  }
  model.add(std::make_unique<Linear>("classifier", features, topology.classes, topology.quant,
                                     rng));
  return model;
}

}  // namespace adaflow::nn
