#include "adaflow/nn/quant.hpp"

#include <cmath>

#include "adaflow/common/error.hpp"

namespace adaflow::nn {

QuantizedWeights quantize_weights(const Tensor& shadow, int bits) {
  require(bits == 1 || bits == 2, "weight quantization supports 1 or 2 bits");
  double abs_sum = 0.0;
  for (std::int64_t i = 0; i < shadow.size(); ++i) {
    abs_sum += std::fabs(static_cast<double>(shadow[i]));
  }
  const float scale =
      shadow.size() > 0 ? static_cast<float>(abs_sum / static_cast<double>(shadow.size())) : 1.0f;
  QuantizedWeights out;
  out.scale = scale > 0.0f ? scale : 1.0f;
  out.levels = Tensor(shadow.shape());
  for (std::int64_t i = 0; i < shadow.size(); ++i) {
    out.levels[i] = quantize_weight_level(shadow[i], out.scale, bits);
  }
  return out;
}

float quantize_weight_level(float value, float scale, int bits) {
  if (bits == 1) {
    return value >= 0.0f ? 1.0f : -1.0f;
  }
  // 2-bit narrow range: {-1, 0, +1}.
  const float r = std::nearbyint(value / scale);
  if (r <= -1.0f) {
    return -1.0f;
  }
  if (r >= 1.0f) {
    return 1.0f;
  }
  return 0.0f;
}

float quantize_act(float x, float scale, int bits) {
  return static_cast<float>(quantize_act_level(x, scale, bits)) * scale;
}

std::int64_t quantize_act_level(float x, float scale, int bits) {
  const std::int64_t max_level = act_level_max(bits);
  const float r = std::nearbyint(x / scale);
  if (r <= 0.0f) {
    return 0;
  }
  const auto level = static_cast<std::int64_t>(r);
  return level > max_level ? max_level : level;
}

float act_ste_mask(float x, float scale, int bits) {
  const float hi = (static_cast<float>(act_level_max(bits)) + 0.5f) * scale;
  return (x > -0.5f * scale && x < hi) ? 1.0f : 0.0f;
}

}  // namespace adaflow::nn
