#include "adaflow/nn/serialize.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <memory>
#include <ostream>

namespace adaflow::nn {

namespace {

constexpr char kMagic[4] = {'A', 'D', 'F', 'M'};
constexpr std::int32_t kVersion = 1;

void write_raw(std::ostream& out, const void* data, std::size_t size) {
  out.write(static_cast<const char*>(data), static_cast<std::streamsize>(size));
}

void write_i64(std::ostream& out, std::int64_t v) { write_raw(out, &v, sizeof(v)); }
void write_i32(std::ostream& out, std::int32_t v) { write_raw(out, &v, sizeof(v)); }
void write_f32(std::ostream& out, float v) { write_raw(out, &v, sizeof(v)); }

void write_string(std::ostream& out, const std::string& s) {
  write_i64(out, static_cast<std::int64_t>(s.size()));
  write_raw(out, s.data(), s.size());
}

void write_tensor(std::ostream& out, const Tensor& t) {
  write_i64(out, t.rank());
  for (std::int64_t i = 0; i < t.rank(); ++i) {
    write_i64(out, t.dim(i));
  }
  write_raw(out, t.data(), static_cast<std::size_t>(t.size()) * sizeof(float));
}

void write_floats(std::ostream& out, const std::vector<float>& v) {
  write_i64(out, static_cast<std::int64_t>(v.size()));
  write_raw(out, v.data(), v.size() * sizeof(float));
}

void write_quant(std::ostream& out, const QuantSpec& q) {
  write_i32(out, q.weight_bits);
  write_i32(out, q.act_bits);
  write_f32(out, q.act_scale);
}

void read_raw(std::istream& in, void* data, std::size_t size) {
  in.read(static_cast<char*>(data), static_cast<std::streamsize>(size));
  if (!in) {
    throw Error("truncated model stream");
  }
}

std::int64_t read_i64(std::istream& in) {
  std::int64_t v = 0;
  read_raw(in, &v, sizeof(v));
  return v;
}

std::int32_t read_i32(std::istream& in) {
  std::int32_t v = 0;
  read_raw(in, &v, sizeof(v));
  return v;
}

float read_f32(std::istream& in) {
  float v = 0;
  read_raw(in, &v, sizeof(v));
  return v;
}

std::string read_string(std::istream& in) {
  const std::int64_t n = read_i64(in);
  if (n < 0 || n > (1 << 20)) {
    throw Error("bad string length in model stream");
  }
  std::string s(static_cast<std::size_t>(n), '\0');
  read_raw(in, s.data(), s.size());
  return s;
}

Tensor read_tensor(std::istream& in) {
  const std::int64_t rank = read_i64(in);
  if (rank < 0 || rank > 8) {
    throw Error("bad tensor rank in model stream");
  }
  Shape shape(static_cast<std::size_t>(rank));
  for (auto& d : shape) {
    d = read_i64(in);
  }
  Tensor t(shape);
  read_raw(in, t.data(), static_cast<std::size_t>(t.size()) * sizeof(float));
  return t;
}

std::vector<float> read_floats(std::istream& in) {
  const std::int64_t n = read_i64(in);
  if (n < 0 || n > (1 << 28)) {
    throw Error("bad float vector length in model stream");
  }
  std::vector<float> v(static_cast<std::size_t>(n));
  read_raw(in, v.data(), v.size() * sizeof(float));
  return v;
}

QuantSpec read_quant(std::istream& in) {
  QuantSpec q;
  q.weight_bits = read_i32(in);
  q.act_bits = read_i32(in);
  q.act_scale = read_f32(in);
  return q;
}

}  // namespace

void save_model(const Model& model, std::ostream& out) {
  write_raw(out, kMagic, sizeof(kMagic));
  write_i32(out, kVersion);
  write_string(out, model.name());
  write_i64(out, static_cast<std::int64_t>(model.input_shape().size()));
  for (std::int64_t d : model.input_shape()) {
    write_i64(out, d);
  }
  write_i64(out, static_cast<std::int64_t>(model.size()));

  for (std::size_t i = 0; i < model.size(); ++i) {
    const Layer& layer = model.layer(i);
    write_i32(out, static_cast<std::int32_t>(layer.kind()));
    write_string(out, layer.name());
    switch (layer.kind()) {
      case LayerKind::kConv2d: {
        const auto& conv = model.layer_as<Conv2d>(i);
        write_i64(out, conv.config().in_channels);
        write_i64(out, conv.config().out_channels);
        write_i64(out, conv.config().kernel);
        write_i64(out, conv.config().stride);
        write_i64(out, conv.config().pad);
        write_quant(out, conv.quant());
        write_tensor(out, conv.weight());
        break;
      }
      case LayerKind::kLinear: {
        const auto& fc = model.layer_as<Linear>(i);
        write_i64(out, fc.in_features());
        write_i64(out, fc.out_features());
        write_quant(out, fc.quant());
        write_tensor(out, fc.weight());
        break;
      }
      case LayerKind::kMaxPool2d: {
        write_i64(out, model.layer_as<MaxPool2d>(i).kernel());
        break;
      }
      case LayerKind::kBatchNorm: {
        const auto& bn = model.layer_as<BatchNorm>(i);
        write_i64(out, bn.channels());
        write_f32(out, bn.eps());
        write_tensor(out, bn.gamma());
        write_tensor(out, bn.beta());
        write_floats(out, bn.running_mean());
        write_floats(out, bn.running_var());
        break;
      }
      case LayerKind::kQuantAct: {
        write_quant(out, model.layer_as<QuantAct>(i).quant());
        break;
      }
    }
  }
}

Model load_model(std::istream& in) {
  char magic[4];
  read_raw(in, magic, sizeof(magic));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw Error("not an AdaFlow model stream");
  }
  const std::int32_t version = read_i32(in);
  if (version != kVersion) {
    throw Error("unsupported model version " + std::to_string(version));
  }
  const std::string name = read_string(in);
  const std::int64_t input_rank = read_i64(in);
  if (input_rank != 3) {
    throw Error("model input shape must be rank 3");
  }
  Shape input(3);
  for (auto& d : input) {
    d = read_i64(in);
  }
  Model model(name, input);

  const std::int64_t layer_count = read_i64(in);
  if (layer_count < 0 || layer_count > 4096) {
    throw Error("bad layer count");
  }
  for (std::int64_t i = 0; i < layer_count; ++i) {
    const auto kind = static_cast<LayerKind>(read_i32(in));
    const std::string layer_name = read_string(in);
    switch (kind) {
      case LayerKind::kConv2d: {
        Conv2dConfig cfg;
        cfg.in_channels = read_i64(in);
        cfg.out_channels = read_i64(in);
        cfg.kernel = read_i64(in);
        cfg.stride = read_i64(in);
        cfg.pad = read_i64(in);
        QuantSpec q = read_quant(in);
        Tensor w = read_tensor(in);
        model.add(std::make_unique<Conv2d>(layer_name, cfg, q, std::move(w)));
        break;
      }
      case LayerKind::kLinear: {
        const std::int64_t in_f = read_i64(in);
        const std::int64_t out_f = read_i64(in);
        QuantSpec q = read_quant(in);
        Tensor w = read_tensor(in);
        model.add(std::make_unique<Linear>(layer_name, in_f, out_f, q, std::move(w)));
        break;
      }
      case LayerKind::kMaxPool2d: {
        model.add(std::make_unique<MaxPool2d>(layer_name, read_i64(in)));
        break;
      }
      case LayerKind::kBatchNorm: {
        const std::int64_t channels = read_i64(in);
        const float eps = read_f32(in);
        auto bn = std::make_unique<BatchNorm>(layer_name, channels, 0.1f, eps);
        Tensor gamma = read_tensor(in);
        Tensor beta = read_tensor(in);
        bn->set_affine(std::move(gamma), std::move(beta));
        std::vector<float> mean = read_floats(in);
        std::vector<float> var = read_floats(in);
        bn->set_statistics(std::move(mean), std::move(var));
        model.add(std::move(bn));
        break;
      }
      case LayerKind::kQuantAct: {
        model.add(std::make_unique<QuantAct>(layer_name, read_quant(in)));
        break;
      }
      default:
        throw Error("unknown layer kind in model stream");
    }
  }
  return model;
}

void save_model_file(const Model& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  require(out.good(), "cannot open " + path + " for writing");
  save_model(model, out);
}

Model load_model_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  require(in.good(), "cannot open " + path);
  return load_model(in);
}

}  // namespace adaflow::nn
