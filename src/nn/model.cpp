#include "adaflow/nn/model.hpp"

namespace adaflow::nn {

const char* layer_kind_name(LayerKind kind) {
  switch (kind) {
    case LayerKind::kConv2d:
      return "Conv2d";
    case LayerKind::kLinear:
      return "Linear";
    case LayerKind::kMaxPool2d:
      return "MaxPool2d";
    case LayerKind::kBatchNorm:
      return "BatchNorm";
    case LayerKind::kQuantAct:
      return "QuantAct";
  }
  return "?";
}

Model::Model(std::string name, Shape input_shape)
    : name_(std::move(name)), input_shape_(std::move(input_shape)) {
  require(input_shape_.size() == 3, "model input shape must be {C, H, W}");
}

void Model::add(LayerPtr layer) {
  require(layer != nullptr, "null layer");
  layers_.push_back(std::move(layer));
}

std::vector<std::size_t> Model::indices_of(LayerKind kind) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (layers_[i]->kind() == kind) {
      out.push_back(i);
    }
  }
  return out;
}

std::vector<Shape> Model::shapes_for_batch(std::int64_t batch) const {
  std::vector<Shape> shapes;
  Shape s{batch, input_shape_[0], input_shape_[1], input_shape_[2]};
  shapes.push_back(s);
  for (const auto& layer : layers_) {
    s = layer->output_shape(s);
    shapes.push_back(s);
  }
  return shapes;
}

Tensor Model::forward(const Tensor& input, bool training) {
  Tensor x = input;
  for (auto& layer : layers_) {
    x = layer->forward(x, training);
  }
  return x;
}

void Model::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
}

std::vector<Param*> Model::params() {
  std::vector<Param*> out;
  for (auto& layer : layers_) {
    for (Param* p : layer->params()) {
      out.push_back(p);
    }
  }
  return out;
}

void Model::zero_grad() {
  for (Param* p : params()) {
    p->zero_grad();
  }
}

std::int64_t Model::param_count() const {
  std::int64_t n = 0;
  for (const auto& layer : layers_) {
    for (Param* p : const_cast<Layer&>(*layer).params()) {
      n += p->value.size();
    }
  }
  return n;
}

std::int64_t Model::mac_count() const {
  std::int64_t macs = 0;
  const std::vector<Shape> shapes = shapes_for_batch(1);
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (layers_[i]->kind() == LayerKind::kConv2d) {
      const auto& conv = layer_as<Conv2d>(i);
      const Shape& out = shapes[i + 1];
      macs += out[2] * out[3] * conv.config().out_channels * conv.config().in_channels *
              conv.config().kernel * conv.config().kernel;
    } else if (layers_[i]->kind() == LayerKind::kLinear) {
      const auto& fc = layer_as<Linear>(i);
      macs += fc.in_features() * fc.out_features();
    }
  }
  return macs;
}

}  // namespace adaflow::nn
