#include "adaflow/nn/maxpool2d.hpp"

namespace adaflow::nn {

MaxPool2d::MaxPool2d(std::string name, std::int64_t kernel)
    : Layer(std::move(name)), kernel_(kernel) {
  require(kernel_ > 0, "maxpool kernel must be positive");
}

Shape MaxPool2d::output_shape(const Shape& input) const {
  if (input.size() != 4) {
    throw ShapeError("maxpool expects rank-4 input");
  }
  if (input[2] % kernel_ != 0 || input[3] % kernel_ != 0) {
    throw ShapeError("maxpool " + name() + " input dims must be divisible by kernel");
  }
  return Shape{input[0], input[1], input[2] / kernel_, input[3] / kernel_};
}

Tensor MaxPool2d::forward(const Tensor& input, bool training) {
  const Shape out_shape = output_shape(input.shape());
  Tensor output(out_shape);
  if (training) {
    argmax_.assign(static_cast<std::size_t>(output.size()), 0);
    cached_input_shape_ = input.shape();
  }
  const std::int64_t batch = input.dim(0);
  const std::int64_t channels = input.dim(1);
  const std::int64_t in_h = input.dim(2);
  const std::int64_t in_w = input.dim(3);
  const std::int64_t out_h = out_shape[2];
  const std::int64_t out_w = out_shape[3];

  std::int64_t out_idx = 0;
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t c = 0; c < channels; ++c) {
      const float* plane = input.data() + (n * channels + c) * in_h * in_w;
      for (std::int64_t oh = 0; oh < out_h; ++oh) {
        for (std::int64_t ow = 0; ow < out_w; ++ow, ++out_idx) {
          float best = plane[(oh * kernel_) * in_w + ow * kernel_];
          std::int64_t best_idx = (oh * kernel_) * in_w + ow * kernel_;
          for (std::int64_t kh = 0; kh < kernel_; ++kh) {
            for (std::int64_t kw = 0; kw < kernel_; ++kw) {
              const std::int64_t idx = (oh * kernel_ + kh) * in_w + (ow * kernel_ + kw);
              if (plane[idx] > best) {
                best = plane[idx];
                best_idx = idx;
              }
            }
          }
          output[out_idx] = best;
          if (training) {
            argmax_[static_cast<std::size_t>(out_idx)] = (n * channels + c) * in_h * in_w + best_idx;
          }
        }
      }
    }
  }
  return output;
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  require(!argmax_.empty(), "maxpool backward without forward");
  Tensor grad_input(cached_input_shape_);
  for (std::int64_t i = 0; i < grad_output.size(); ++i) {
    grad_input[argmax_[static_cast<std::size_t>(i)]] += grad_output[i];
  }
  return grad_input;
}

}  // namespace adaflow::nn
