#include "adaflow/nn/quant_act.hpp"

namespace adaflow::nn {

QuantAct::QuantAct(std::string name, QuantSpec quant) : Layer(std::move(name)), quant_(quant) {
  require(quant_.act_bits >= 0 && quant_.act_bits <= 8, "activation bits out of range");
  require(quant_.act_scale > 0.0f, "activation scale must be positive");
}

Tensor QuantAct::forward(const Tensor& input, bool training) {
  Tensor output(input.shape());
  if (quant_.quantized_acts()) {
    for (std::int64_t i = 0; i < input.size(); ++i) {
      output[i] = quantize_act(input[i], quant_.act_scale, quant_.act_bits);
    }
  } else {
    for (std::int64_t i = 0; i < input.size(); ++i) {
      output[i] = input[i] > 0.0f ? input[i] : 0.0f;
    }
  }
  if (training) {
    cached_input_ = input;
  }
  return output;
}

Tensor QuantAct::backward(const Tensor& grad_output) {
  require(!cached_input_.empty(), "quant_act backward without forward");
  Tensor grad_input(grad_output.shape());
  if (quant_.quantized_acts()) {
    for (std::int64_t i = 0; i < grad_output.size(); ++i) {
      grad_input[i] =
          grad_output[i] * act_ste_mask(cached_input_[i], quant_.act_scale, quant_.act_bits);
    }
  } else {
    for (std::int64_t i = 0; i < grad_output.size(); ++i) {
      grad_input[i] = cached_input_[i] > 0.0f ? grad_output[i] : 0.0f;
    }
  }
  return grad_input;
}

}  // namespace adaflow::nn
