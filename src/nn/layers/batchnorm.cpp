#include "adaflow/nn/batchnorm.hpp"

#include <cmath>

namespace adaflow::nn {

namespace {
// Iterates (outer, channel, inner) where rank-4 maps to (N, C, H*W) and
// rank-2 maps to (N, C, 1).
struct Geometry {
  std::int64_t outer;
  std::int64_t channels;
  std::int64_t inner;
};

Geometry geometry(const Shape& shape, std::int64_t channels, const std::string& name) {
  if (shape.size() == 4) {
    if (shape[1] != channels) {
      throw ShapeError("batchnorm " + name + " channel mismatch");
    }
    return {shape[0], channels, shape[2] * shape[3]};
  }
  if (shape.size() == 2) {
    if (shape[1] != channels) {
      throw ShapeError("batchnorm " + name + " feature mismatch");
    }
    return {shape[0], channels, 1};
  }
  throw ShapeError("batchnorm expects rank-2 or rank-4 input");
}
}  // namespace

BatchNorm::BatchNorm(std::string name, std::int64_t channels, float momentum, float eps)
    : Layer(std::move(name)), channels_(channels), momentum_(momentum), eps_(eps) {
  require(channels > 0, "batchnorm channels must be positive");
  gamma_ = Param(Tensor::full(Shape{channels}, 1.0f));
  beta_ = Param(Tensor::zeros(Shape{channels}));
  running_mean_.assign(static_cast<std::size_t>(channels), 0.0f);
  running_var_.assign(static_cast<std::size_t>(channels), 1.0f);
}

Shape BatchNorm::output_shape(const Shape& input) const {
  geometry(input, channels_, name());
  return input;
}

AffineChannel BatchNorm::inference_affine() const {
  AffineChannel affine;
  affine.scale.resize(static_cast<std::size_t>(channels_));
  affine.shift.resize(static_cast<std::size_t>(channels_));
  for (std::int64_t c = 0; c < channels_; ++c) {
    const auto i = static_cast<std::size_t>(c);
    const float inv_std = 1.0f / std::sqrt(running_var_[i] + eps_);
    affine.scale[i] = gamma_.value[c] * inv_std;
    affine.shift[i] = beta_.value[c] - gamma_.value[c] * running_mean_[i] * inv_std;
  }
  return affine;
}

void BatchNorm::set_statistics(std::vector<float> mean, std::vector<float> var) {
  require(static_cast<std::int64_t>(mean.size()) == channels_ &&
              static_cast<std::int64_t>(var.size()) == channels_,
          "batchnorm statistics size mismatch");
  running_mean_ = std::move(mean);
  running_var_ = std::move(var);
}

void BatchNorm::set_affine(Tensor gamma, Tensor beta) {
  require(gamma.size() == channels_ && beta.size() == channels_, "batchnorm affine size mismatch");
  gamma_.value = std::move(gamma);
  gamma_.grad = Tensor(Shape{channels_});
  beta_.value = std::move(beta);
  beta_.grad = Tensor(Shape{channels_});
}

Tensor BatchNorm::forward(const Tensor& input, bool training) {
  const Geometry g = geometry(input.shape(), channels_, name());
  Tensor output(input.shape());

  if (!training) {
    const AffineChannel affine = inference_affine();
    for (std::int64_t n = 0; n < g.outer; ++n) {
      for (std::int64_t c = 0; c < g.channels; ++c) {
        const auto ci = static_cast<std::size_t>(c);
        const float* in = input.data() + (n * g.channels + c) * g.inner;
        float* out = output.data() + (n * g.channels + c) * g.inner;
        for (std::int64_t i = 0; i < g.inner; ++i) {
          out[i] = affine.scale[ci] * in[i] + affine.shift[ci];
        }
      }
    }
    return output;
  }

  const double count = static_cast<double>(g.outer * g.inner);
  cached_normalized_ = Tensor(input.shape());
  cached_batch_std_.assign(static_cast<std::size_t>(channels_), 1.0f);
  cached_per_channel_ = g.outer * g.inner;

  for (std::int64_t c = 0; c < g.channels; ++c) {
    double sum = 0.0;
    double sq_sum = 0.0;
    for (std::int64_t n = 0; n < g.outer; ++n) {
      const float* in = input.data() + (n * g.channels + c) * g.inner;
      for (std::int64_t i = 0; i < g.inner; ++i) {
        sum += in[i];
        sq_sum += static_cast<double>(in[i]) * in[i];
      }
    }
    const double mean = sum / count;
    const double var = sq_sum / count - mean * mean;
    const float std_dev = static_cast<float>(std::sqrt(var + eps_));
    const auto ci = static_cast<std::size_t>(c);
    cached_batch_std_[ci] = std_dev;

    running_mean_[ci] = (1.0f - momentum_) * running_mean_[ci] + momentum_ * static_cast<float>(mean);
    running_var_[ci] = (1.0f - momentum_) * running_var_[ci] + momentum_ * static_cast<float>(var);

    for (std::int64_t n = 0; n < g.outer; ++n) {
      const float* in = input.data() + (n * g.channels + c) * g.inner;
      float* norm = cached_normalized_.data() + (n * g.channels + c) * g.inner;
      float* out = output.data() + (n * g.channels + c) * g.inner;
      for (std::int64_t i = 0; i < g.inner; ++i) {
        const float x_hat = (in[i] - static_cast<float>(mean)) / std_dev;
        norm[i] = x_hat;
        out[i] = gamma_.value[c] * x_hat + beta_.value[c];
      }
    }
  }
  return output;
}

Tensor BatchNorm::backward(const Tensor& grad_output) {
  require(!cached_normalized_.empty(), "batchnorm backward without forward");
  const Geometry g = geometry(grad_output.shape(), channels_, name());
  Tensor grad_input(grad_output.shape());
  const double count = static_cast<double>(cached_per_channel_);

  for (std::int64_t c = 0; c < g.channels; ++c) {
    const auto ci = static_cast<std::size_t>(c);
    double dgamma = 0.0;
    double dbeta = 0.0;
    for (std::int64_t n = 0; n < g.outer; ++n) {
      const float* dy = grad_output.data() + (n * g.channels + c) * g.inner;
      const float* x_hat = cached_normalized_.data() + (n * g.channels + c) * g.inner;
      for (std::int64_t i = 0; i < g.inner; ++i) {
        dgamma += static_cast<double>(dy[i]) * x_hat[i];
        dbeta += dy[i];
      }
    }
    gamma_.grad[c] += static_cast<float>(dgamma);
    beta_.grad[c] += static_cast<float>(dbeta);

    const float inv_std = 1.0f / cached_batch_std_[ci];
    const float k = gamma_.value[c] * inv_std;
    for (std::int64_t n = 0; n < g.outer; ++n) {
      const float* dy = grad_output.data() + (n * g.channels + c) * g.inner;
      const float* x_hat = cached_normalized_.data() + (n * g.channels + c) * g.inner;
      float* dx = grad_input.data() + (n * g.channels + c) * g.inner;
      for (std::int64_t i = 0; i < g.inner; ++i) {
        dx[i] = k * (dy[i] - static_cast<float>(dbeta / count) -
                     x_hat[i] * static_cast<float>(dgamma / count));
      }
    }
  }
  return grad_input;
}

}  // namespace adaflow::nn
