#include "adaflow/nn/linear.hpp"

#include "adaflow/nn/gemm.hpp"

namespace adaflow::nn {

namespace {
std::int64_t flat_features(const Shape& input) {
  std::int64_t f = 1;
  for (std::size_t i = 1; i < input.size(); ++i) {
    f *= input[i];
  }
  return f;
}
}  // namespace

Linear::Linear(std::string name, std::int64_t in_features, std::int64_t out_features,
               QuantSpec quant, Rng& rng)
    : Layer(std::move(name)), in_features_(in_features), out_features_(out_features),
      quant_(quant) {
  require(in_features > 0 && out_features > 0, "linear features must be positive");
  weight_ = Param(Tensor::he_normal(Shape{out_features, in_features}, in_features, rng));
}

Linear::Linear(std::string name, std::int64_t in_features, std::int64_t out_features,
               QuantSpec quant, Tensor weight)
    : Layer(std::move(name)), in_features_(in_features), out_features_(out_features),
      quant_(quant) {
  if (weight.shape() != Shape{out_features, in_features}) {
    throw ShapeError("linear weight shape mismatch: " + weight.shape_string());
  }
  weight_ = Param(std::move(weight));
}

Shape Linear::output_shape(const Shape& input) const {
  if (input.empty() || flat_features(input) != in_features_) {
    throw ShapeError("linear " + name() + " expects " + std::to_string(in_features_) +
                     " flattened features");
  }
  return Shape{input[0], out_features_};
}

Tensor Linear::effective_weight() const {
  if (!quant_.quantized_weights()) {
    return weight_.value;
  }
  QuantizedWeights q = quantize_weights(weight_.value, quant_.weight_bits);
  Tensor w(q.levels.shape());
  for (std::int64_t i = 0; i < w.size(); ++i) {
    w[i] = q.levels[i] * q.scale;
  }
  return w;
}

QuantizedWeights Linear::export_quantized() const {
  require(quant_.quantized_weights(), "linear " + name() + " has float weights");
  return quantize_weights(weight_.value, quant_.weight_bits);
}

Tensor Linear::forward(const Tensor& input, bool training) {
  const Shape out_shape = output_shape(input.shape());
  const std::int64_t batch = input.dim(0);
  Tensor flat = input.rank() == 2 ? input : input.reshaped(Shape{batch, in_features_});

  Tensor w = effective_weight();
  Tensor output(out_shape);
  // out [N, out] = flat [N, in] * W^T [in, out]
  gemm_nt(batch, out_features_, in_features_, flat.data(), w.data(), output.data());

  if (training) {
    cached_input_shape_ = input.shape();
    cached_input_ = std::move(flat);
    cached_effective_weight_ = std::move(w);
  }
  return output;
}

Tensor Linear::backward(const Tensor& grad_output) {
  require(!cached_input_.empty(), "linear backward without forward");
  const std::int64_t batch = cached_input_.dim(0);

  // dW [out, in] += dY^T [out, N] * X [N, in]
  gemm_tn(out_features_, in_features_, batch, grad_output.data(), cached_input_.data(),
          weight_.grad.data());

  // dX [N, in] = dY [N, out] * W [out, in]
  Tensor grad_flat(Shape{batch, in_features_});
  gemm_nn(batch, in_features_, out_features_, grad_output.data(), cached_effective_weight_.data(),
          grad_flat.data());
  return grad_flat.reshaped(cached_input_shape_);
}

}  // namespace adaflow::nn
