#include "adaflow/nn/conv2d.hpp"

#include <vector>

#include "adaflow/common/parallel.hpp"
#include "adaflow/nn/gemm.hpp"

namespace adaflow::nn {

namespace {
Shape weight_shape(const Conv2dConfig& c) {
  return Shape{c.out_channels, c.in_channels * c.kernel * c.kernel};
}
}  // namespace

Conv2d::Conv2d(std::string name, Conv2dConfig config, QuantSpec quant, Rng& rng)
    : Layer(std::move(name)), config_(config), quant_(quant) {
  require(config_.in_channels > 0 && config_.out_channels > 0, "conv channels must be positive");
  require(config_.kernel > 0 && config_.stride > 0 && config_.pad >= 0, "bad conv geometry");
  const std::int64_t fan_in = config_.in_channels * config_.kernel * config_.kernel;
  weight_ = Param(Tensor::he_normal(weight_shape(config_), fan_in, rng));
}

Conv2d::Conv2d(std::string name, Conv2dConfig config, QuantSpec quant, Tensor weight)
    : Layer(std::move(name)), config_(config), quant_(quant) {
  if (weight.shape() != weight_shape(config_)) {
    throw ShapeError("conv weight shape mismatch: " + weight.shape_string());
  }
  weight_ = Param(std::move(weight));
}

std::int64_t Conv2d::output_dim(std::int64_t input_dim) const {
  return (input_dim + 2 * config_.pad - config_.kernel) / config_.stride + 1;
}

Shape Conv2d::output_shape(const Shape& input) const {
  if (input.size() != 4 || input[1] != config_.in_channels) {
    throw ShapeError("conv " + name() + " expects [N, " + std::to_string(config_.in_channels) +
                     ", H, W]");
  }
  return Shape{input[0], config_.out_channels, output_dim(input[2]), output_dim(input[3])};
}

Tensor Conv2d::effective_weight() const {
  if (!quant_.quantized_weights()) {
    return weight_.value;
  }
  QuantizedWeights q = quantize_weights(weight_.value, quant_.weight_bits);
  Tensor w(q.levels.shape());
  for (std::int64_t i = 0; i < w.size(); ++i) {
    w[i] = q.levels[i] * q.scale;
  }
  return w;
}

QuantizedWeights Conv2d::export_quantized() const {
  require(quant_.quantized_weights(), "conv " + name() + " has float weights");
  return quantize_weights(weight_.value, quant_.weight_bits);
}

Tensor Conv2d::forward(const Tensor& input, bool training) {
  const Shape out_shape = output_shape(input.shape());
  const std::int64_t batch = input.dim(0);
  const std::int64_t in_h = input.dim(2);
  const std::int64_t in_w = input.dim(3);
  const std::int64_t out_h = out_shape[2];
  const std::int64_t out_w = out_shape[3];
  const std::int64_t k_count = config_.in_channels * config_.kernel * config_.kernel;
  const std::int64_t n_count = out_h * out_w;

  Tensor w = effective_weight();
  Tensor output(out_shape);

  parallel_for(batch, [&](std::int64_t n) {
    std::vector<float> col(static_cast<std::size_t>(k_count * n_count));
    const float* in_ptr = input.data() + n * config_.in_channels * in_h * in_w;
    im2col(in_ptr, config_.in_channels, in_h, in_w, config_.kernel, config_.stride, config_.pad,
           col.data());
    float* out_ptr = output.data() + n * config_.out_channels * n_count;
    gemm_nn(config_.out_channels, n_count, k_count, w.data(), col.data(), out_ptr);
  });

  if (training) {
    cached_input_ = input;
    cached_effective_weight_ = std::move(w);
  }
  return output;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  require(!cached_input_.empty(), "conv backward without forward");
  const Tensor& input = cached_input_;
  const std::int64_t batch = input.dim(0);
  const std::int64_t in_h = input.dim(2);
  const std::int64_t in_w = input.dim(3);
  const std::int64_t out_h = grad_output.dim(2);
  const std::int64_t out_w = grad_output.dim(3);
  const std::int64_t k_count = config_.in_channels * config_.kernel * config_.kernel;
  const std::int64_t n_count = out_h * out_w;

  Tensor grad_input(input.shape());
  // Per-sample weight-gradient partials, reduced serially afterwards.
  std::vector<Tensor> dw_partial(static_cast<std::size_t>(batch));

  parallel_for(batch, [&](std::int64_t n) {
    std::vector<float> col(static_cast<std::size_t>(k_count * n_count));
    const float* in_ptr = input.data() + n * config_.in_channels * in_h * in_w;
    im2col(in_ptr, config_.in_channels, in_h, in_w, config_.kernel, config_.stride, config_.pad,
           col.data());

    const float* dy = grad_output.data() + n * config_.out_channels * n_count;

    // dW_n = dY_n [out, HW] * col^T [HW, K]
    Tensor dw(weight_.value.shape());
    gemm_nt(config_.out_channels, k_count, n_count, dy, col.data(), dw.data());
    dw_partial[static_cast<std::size_t>(n)] = std::move(dw);

    // dCol = W^T [K, out] * dY_n [out, HW]
    std::vector<float> dcol(static_cast<std::size_t>(k_count * n_count), 0.0f);
    gemm_tn(k_count, n_count, config_.out_channels, cached_effective_weight_.data(), dy,
            dcol.data());
    float* dx = grad_input.data() + n * config_.in_channels * in_h * in_w;
    col2im(dcol.data(), config_.in_channels, in_h, in_w, config_.kernel, config_.stride,
           config_.pad, dx);
  });

  for (const Tensor& dw : dw_partial) {
    for (std::int64_t i = 0; i < weight_.grad.size(); ++i) {
      weight_.grad[i] += dw[i];  // STE: gradient w.r.t. quantized weight flows to shadow
    }
  }
  return grad_input;
}

void im2col(const float* input, std::int64_t channels, std::int64_t height, std::int64_t width,
            std::int64_t kernel, std::int64_t stride, std::int64_t pad, float* col) {
  const std::int64_t out_h = (height + 2 * pad - kernel) / stride + 1;
  const std::int64_t out_w = (width + 2 * pad - kernel) / stride + 1;
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < channels; ++c) {
    for (std::int64_t kh = 0; kh < kernel; ++kh) {
      for (std::int64_t kw = 0; kw < kernel; ++kw, ++row) {
        float* dst = col + row * out_h * out_w;
        for (std::int64_t oh = 0; oh < out_h; ++oh) {
          const std::int64_t ih = oh * stride + kh - pad;
          for (std::int64_t ow = 0; ow < out_w; ++ow) {
            const std::int64_t iw = ow * stride + kw - pad;
            const bool inside = ih >= 0 && ih < height && iw >= 0 && iw < width;
            dst[oh * out_w + ow] = inside ? input[(c * height + ih) * width + iw] : 0.0f;
          }
        }
      }
    }
  }
}

void col2im(const float* col, std::int64_t channels, std::int64_t height, std::int64_t width,
            std::int64_t kernel, std::int64_t stride, std::int64_t pad, float* input) {
  const std::int64_t out_h = (height + 2 * pad - kernel) / stride + 1;
  const std::int64_t out_w = (width + 2 * pad - kernel) / stride + 1;
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < channels; ++c) {
    for (std::int64_t kh = 0; kh < kernel; ++kh) {
      for (std::int64_t kw = 0; kw < kernel; ++kw, ++row) {
        const float* src = col + row * out_h * out_w;
        for (std::int64_t oh = 0; oh < out_h; ++oh) {
          const std::int64_t ih = oh * stride + kh - pad;
          if (ih < 0 || ih >= height) {
            continue;
          }
          for (std::int64_t ow = 0; ow < out_w; ++ow) {
            const std::int64_t iw = ow * stride + kw - pad;
            if (iw < 0 || iw >= width) {
              continue;
            }
            input[(c * height + ih) * width + iw] += src[oh * out_w + ow];
          }
        }
      }
    }
  }
}

}  // namespace adaflow::nn
