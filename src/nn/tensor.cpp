#include "adaflow/nn/tensor.hpp"

#include <cmath>
#include <sstream>

namespace adaflow::nn {

Tensor::Tensor(Shape shape) : shape_(std::move(shape)) {
  data_.assign(static_cast<std::size_t>(element_count(shape_)), 0.0f);
}

Tensor::Tensor(Shape shape, float value) : shape_(std::move(shape)) {
  data_.assign(static_cast<std::size_t>(element_count(shape_)), value);
}

Tensor Tensor::he_normal(Shape shape, std::int64_t fan_in, Rng& rng) {
  require(fan_in > 0, "he_normal fan_in must be positive");
  Tensor t(std::move(shape));
  const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
  for (std::int64_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.normal(0.0, stddev));
  }
  return t;
}

Tensor Tensor::uniform(Shape shape, float lo, float hi, Rng& rng) {
  Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.uniform(lo, hi));
  }
  return t;
}

void Tensor::fill(float value) {
  for (auto& v : data_) {
    v = value;
  }
}

Tensor Tensor::reshaped(Shape new_shape) const {
  if (element_count(new_shape) != size()) {
    throw ShapeError("reshape from " + shape_string() + " changes element count");
  }
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.data_ = data_;
  return t;
}

std::int64_t Tensor::element_count(const Shape& shape) {
  std::int64_t n = 1;
  for (std::int64_t d : shape) {
    if (d < 0) {
      throw ShapeError("negative dimension");
    }
    n *= d;
  }
  return n;
}

std::string Tensor::shape_string() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    os << (i ? ", " : "") << shape_[i];
  }
  os << "]";
  return os.str();
}

void check_same_shape(const Tensor& a, const Tensor& b, const std::string& context) {
  if (a.shape() != b.shape()) {
    throw ShapeError(context + ": " + a.shape_string() + " vs " + b.shape_string());
  }
}

}  // namespace adaflow::nn
