#pragma once

/// \file mailbox.hpp
/// Deterministic per-shard handoff buffers for the sharded fleet engine.
///
/// Shards never touch each other's state while a window is running; a frame
/// that one shard cannot place (its ingress shed it) is recorded in that
/// shard's OUTBOX, and the main thread moves outboxes into inboxes between
/// windows, always in shard order. Because a mailbox is only ever written by
/// its owning shard inside the parallel region and only ever exchanged on
/// the main thread at the barrier, the contents — and therefore the whole
/// simulation — are independent of how many worker threads advanced the
/// shards.

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace adaflow::shard {

/// One frame in transit between shards: the opaque frame tag (DeviceSim's
/// kNoTag for anonymous traffic) plus how many shard boundaries it has
/// crossed already (bounded by ShardConfig::max_hops).
struct Handoff {
  std::int64_t tag = -1;
  int hops = 0;
};

/// FIFO handoff buffer. push order is preserved by drain(), which is what
/// makes delivery deterministic: the owning shard pushes in simulation-event
/// order, and the receiver offers frames in exactly that order at the next
/// window start.
class Mailbox {
 public:
  void push(const Handoff& h) { items_.push_back(h); }

  /// Moves the buffered handoffs out, leaving the mailbox empty.
  std::vector<Handoff> drain() {
    std::vector<Handoff> out = std::move(items_);
    items_.clear();
    return out;
  }

  bool empty() const { return items_.empty(); }
  std::size_t size() const { return items_.size(); }

 private:
  std::vector<Handoff> items_;
};

}  // namespace adaflow::shard
