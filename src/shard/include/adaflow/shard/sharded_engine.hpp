#pragma once

/// \file sharded_engine.hpp
/// Conservative-window parallel fleet simulation: the devices of one
/// FleetConfig are partitioned round-robin into S shards, each shard is a
/// complete FleetEngine on its own sim::EventQueue (own router instance, own
/// seed salt), and all shards advance together through fixed time windows
/// [t, t + window_s) on the common/parallel worker pool.
///
/// Why this is safe: devices only ever interact through the dispatcher —
/// there is no direct device-to-device coupling — so a shard's evolution
/// inside a window depends only on its own state plus the frames delivered
/// to it at the window start. Cross-shard influence exists in exactly one
/// form, frames a shard's ingress shed, and those travel through per-shard
/// mailboxes exchanged ON THE MAIN THREAD at window barriers. Hence the
/// determinism contract: for a fixed (seed, shard count, window), the merged
/// metrics are BIT-IDENTICAL regardless of worker-thread count, because
/// thread scheduling can only reorder work WITHIN a window, where shards
/// share nothing.
///
/// With S == 1 the engine degrades to exactly run_fleet(): shard 0's seed is
/// the fleet seed unchanged, the arrival stream consumes the Rng identically,
/// and there is no other shard to hand off to (sheds are final) — pinned by
/// tests/shard/test_sharded_engine.cpp.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "adaflow/core/library.hpp"
#include "adaflow/edge/workload.hpp"
#include "adaflow/fleet/fleet.hpp"

namespace adaflow::shard {

/// Partitioning/parallelism knobs of one sharded run.
struct ShardConfig {
  /// Number of shards S. Devices go to shards round-robin (device i -> shard
  /// i % S); the ingress capacity splits evenly (first capacity % S shards
  /// get one extra slot). Must be in [1, device count].
  int shards = 1;
  /// Worker threads to resize the global pool to for this run (restored
  /// afterwards); 0 keeps the pool as-is. Thread count NEVER affects
  /// results — only wall-clock.
  int threads = 0;
  /// Conservative sync window [s]. Shards run independently inside a window;
  /// handoffs and the barrier happen at multiples of this. Smaller windows
  /// tighten cross-shard latency at more barrier overhead.
  double window_s = 0.25;
  /// How many shard boundaries a shed frame may cross looking for ingress
  /// headroom before it is finally lost. 0 disables forwarding.
  int max_hops = 2;

  /// Throws ConfigError naming the offending field. \p device_count is the
  /// fleet's device count (shards must not exceed it).
  void validate(std::size_t device_count) const;
};

/// Observability of the sharded run itself (the merged FleetMetrics carries
/// the simulation outcome).
struct ShardStats {
  int shards = 0;
  int threads = 0;        ///< pool size the windows actually ran on
  std::int64_t windows = 0;
  std::int64_t handoffs = 0;      ///< shed frames forwarded to another shard
  std::int64_t handoff_lost = 0;  ///< forwarded frames that still died (max_hops)
  double wall_seconds = 0.0;      ///< wall-clock of the window loop
};

struct ShardedMetrics {
  fleet::FleetMetrics fleet;
  ShardStats stats;
};

/// Per-shard seed salt. shard 0 keeps the fleet seed UNCHANGED — that is
/// what makes S == 1 replay run_fleet() bit-identically — and later shards
/// get splitmix-style spread salts so neighbouring shards draw unrelated
/// fault streams.
std::uint64_t shard_seed(std::uint64_t seed, int shard);

/// Runs the sharded cluster simulation of \p trace. \p router_name picks the
/// routing policy (see fleet::router_names()); each shard gets its OWN
/// router instance because routers are stateful. The same (config, shard
/// config, trace, seed) tuple replays bit-identically at any thread count.
ShardedMetrics run_sharded_fleet(const edge::WorkloadTrace& trace,
                                 const core::AcceleratorLibrary& library,
                                 const fleet::FleetConfig& config, const ShardConfig& shard,
                                 const std::string& router_name, std::uint64_t seed);

/// FNV-1a digest over the merged metrics' full observable state — counters,
/// double bit patterns, every series sample, the e2e histogram buckets, and
/// the per-device results in order — rendered as 16 hex chars. Two runs are
/// bit-identical exactly when their fingerprints match; the determinism
/// tests and bench_shard compare these across thread counts.
std::string metrics_fingerprint(const fleet::FleetMetrics& m);

}  // namespace adaflow::shard
