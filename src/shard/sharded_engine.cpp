#include "adaflow/shard/sharded_engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

#include "adaflow/common/error.hpp"
#include "adaflow/common/parallel.hpp"
#include "adaflow/common/rng.hpp"
#include "adaflow/fleet/engine.hpp"
#include "adaflow/fleet/routing.hpp"
#include "adaflow/shard/mailbox.hpp"
#include "adaflow/sim/event_queue.hpp"

namespace adaflow::shard {

void ShardConfig::validate(std::size_t device_count) const {
  if (shards < 1) {
    throw ConfigError("ShardConfig.shards must be >= 1");
  }
  if (static_cast<std::size_t>(shards) > device_count) {
    throw ConfigError("ShardConfig.shards (" + std::to_string(shards) +
                      ") exceeds the fleet's device count (" + std::to_string(device_count) +
                      "): a shard must own at least one device");
  }
  if (threads < 0) {
    throw ConfigError("ShardConfig.threads must be >= 0 (0 keeps the current pool)");
  }
  if (!(window_s > 0.0)) {
    throw ConfigError("ShardConfig.window_s must be positive");
  }
  if (max_hops < 0) {
    throw ConfigError("ShardConfig.max_hops must be >= 0");
  }
}

std::uint64_t shard_seed(std::uint64_t seed, int shard) {
  if (shard == 0) {
    return seed;  // S == 1 must replay run_fleet() exactly
  }
  return seed ^ (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(shard) << 17));
}

namespace {

/// Restores the global worker-pool size on scope exit.
class WorkerCountGuard {
 public:
  explicit WorkerCountGuard(int requested) : previous_(parallel_worker_count()) {
    if (requested > 0) {
      set_worker_count(requested);
    }
  }
  ~WorkerCountGuard() { set_worker_count(previous_); }
  WorkerCountGuard(const WorkerCountGuard&) = delete;
  WorkerCountGuard& operator=(const WorkerCountGuard&) = delete;

 private:
  int previous_;
};

/// One shard: a complete FleetEngine over a device subset, plus its arrival
/// stream and handoff buffers. Heap-allocated so the references the engine
/// keeps (config, router, queue) stay stable.
struct Shard {
  fleet::FleetConfig config;  // device subset; outlives the engine
  std::unique_ptr<fleet::RoutingPolicy> router;
  sim::EventQueue queue;
  std::unique_ptr<fleet::FleetEngine> engine;

  std::vector<double> arrivals;  ///< home arrival times, ascending
  std::size_t next_arrival = 0;

  Mailbox inbox;
  Mailbox outbox;
  std::int64_t forwarded = 0;     ///< sheds pushed to the outbox
  std::int64_t handoff_lost = 0;  ///< forwarded frames shed at max_hops
};

/// Replays run_fleet()'s arrival generation offline: the same Rng, consumed
/// in the same order, including the 0.05 s rate-recheck steps through
/// zero-rate segments — so shard 0 of an S == 1 run sees bit-identical
/// arrival times to the classic entry point.
std::vector<double> precompute_arrivals(const edge::WorkloadTrace& trace, std::uint64_t seed) {
  std::vector<double> arrivals;
  Rng rng(seed);
  const double duration = trace.duration();
  double t = 0.0;
  while (t <= duration) {
    const double rate = trace.rate_at(t);
    if (rate <= 0.0) {
      t += 0.05;  // run_fleet's schedule_in(0.05) recheck, no Rng draw
      continue;
    }
    const double when = t + rng.exponential(rate);
    if (when > duration) {
      break;
    }
    arrivals.push_back(when);
    t = when;
  }
  return arrivals;
}

class Runner {
 public:
  Runner(const edge::WorkloadTrace& trace, const core::AcceleratorLibrary& library,
         const fleet::FleetConfig& config, const ShardConfig& shard_cfg,
         const std::string& router_name, std::uint64_t seed)
      : trace_(trace), library_(library), shard_cfg_(shard_cfg) {
    config.validate();
    shard_cfg.validate(config.devices.size());
    require(!library.versions.empty(), "sharded fleet library has no versions");

    const int S = shard_cfg.shards;
    shards_.reserve(static_cast<std::size_t>(S));
    for (int s = 0; s < S; ++s) {
      auto sh = std::make_unique<Shard>();
      sh->config.ingress_capacity =
          config.ingress_capacity / S + (s < static_cast<int>(config.ingress_capacity % S) ? 1 : 0);
      sh->config.sample_interval_s = config.sample_interval_s;
      sh->config.coordinator = config.coordinator;
      sh->config.health = config.health;
      sh->config.integrity = config.integrity;
      for (std::size_t i = static_cast<std::size_t>(s); i < config.devices.size();
           i += static_cast<std::size_t>(S)) {
        sh->config.devices.push_back(config.devices[i]);
      }
      sh->router = fleet::make_router(router_name);
      shards_.push_back(std::move(sh));
    }

    // The arrival stream is one global Poisson process (run_fleet's, exactly);
    // frame k goes to shard k % S, so every shard sees a thinned copy of the
    // same traffic and S == 1 degenerates to the classic stream.
    const std::vector<double> all = precompute_arrivals(trace, seed);
    for (std::size_t k = 0; k < all.size(); ++k) {
      shards_[k % static_cast<std::size_t>(S)]->arrivals.push_back(all[k]);
    }

    for (int s = 0; s < S; ++s) {
      Shard& sh = *shards_[static_cast<std::size_t>(s)];
      sh.engine = std::make_unique<fleet::FleetEngine>(sh.queue, library_, sh.config, *sh.router,
                                                       shard_seed(seed, s), trace.duration());
    }
  }

  ShardedMetrics run() {
    WorkerCountGuard guard(shard_cfg_.threads);
    const auto wall_start = std::chrono::steady_clock::now();
    const int S = shard_cfg_.shards;
    const double duration = trace_.duration();

    for (auto& sh : shards_) {
      sh->engine->start();
      schedule_next_arrival(*sh);
    }

    std::int64_t windows = 0;
    double t_end = 0.0;
    while (t_end < duration) {
      t_end = std::min(duration, static_cast<double>(windows + 1) * shard_cfg_.window_s);
      ++windows;
      // Inside the window shards share nothing: each delivers its inbox at
      // the window start (main-thread exchange of the PREVIOUS barrier fixed
      // the contents and order), then advances its own event queue. Any
      // thread may run any shard — the outcome cannot depend on which.
      parallel_for(S, [&](std::int64_t s) {
        Shard& sh = *shards_[static_cast<std::size_t>(s)];
        for (const Handoff& h : sh.inbox.drain()) {
          offer(sh, h.tag, h.hops);
        }
        sh.queue.run_until(t_end);
      });
      exchange();
    }

    // Frames still in flight between shards at the end get one last delivery
    // at t == duration, so they land in the receiver's books (dispatched or
    // ingress backlog) instead of vanishing from the flow-conservation
    // identity. No forwarding here — there is no later window to deliver an
    // outbox in, so a shed at this point is terminal.
    for (auto& sh : shards_) {
      for (const Handoff& h : sh->inbox.drain()) {
        offer(*sh, h.tag, h.hops, /*allow_forward=*/false);
      }
    }

    ShardedMetrics out;
    std::int64_t total_forwarded = 0;
    for (auto& sh : shards_) {
      out.fleet.merge(sh->engine->finalize(duration));
      total_forwarded += sh->forwarded;
      out.stats.handoff_lost += sh->handoff_lost;
    }
    // A forwarded frame was booked once as arrived + ingress_lost at the
    // shard that shed it AND once as arrived at the shard it was re-offered
    // to. Subtracting the forward count from both sides keeps each frame
    // counted exactly once and preserves
    //   arrived + redispatched == dispatched + ingress_lost + ingress_backlog.
    out.fleet.arrived -= total_forwarded;
    out.fleet.ingress_lost -= total_forwarded;

    out.stats.shards = S;
    out.stats.threads = parallel_worker_count();
    out.stats.windows = windows;
    out.stats.handoffs = total_forwarded;
    out.stats.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
    return out;
  }

 private:
  /// Offers one frame to \p sh's engine at its queue's current time, routing
  /// a shed to the outbox while hops remain. Called only by the thread
  /// currently running this shard (arrival events + inbox delivery).
  void offer(Shard& sh, std::int64_t tag, int hops, bool allow_forward = true) {
    const auto admit = sh.engine->offer_frame(tag);
    if (admit != fleet::FleetEngine::Admit::kShed) {
      return;
    }
    if (allow_forward && shard_cfg_.shards > 1 && hops < shard_cfg_.max_hops) {
      sh.outbox.push(Handoff{tag, hops + 1});
      ++sh.forwarded;
    } else if (hops > 0) {
      ++sh.handoff_lost;  // travelled and still found every ingress full
    }
  }

  /// Chains the shard's next home arrival, mirroring run_fleet's
  /// self-rescheduling event (offer first, then schedule the successor) so
  /// the event queue consumes sequence numbers identically at S == 1.
  void schedule_next_arrival(Shard& sh) {
    if (sh.next_arrival >= sh.arrivals.size()) {
      return;
    }
    const double when = sh.arrivals[sh.next_arrival];
    ++sh.next_arrival;
    sh.queue.schedule_at(when, [this, &sh] {
      offer(sh, edge::DeviceSim::kNoTag, 0);
      schedule_next_arrival(sh);
    });
  }

  /// Window barrier, main thread only: outbox s feeds inbox (s+1) % S, in
  /// shard order — the single deterministic cross-shard channel.
  void exchange() {
    const auto S = shards_.size();
    for (std::size_t s = 0; s < S; ++s) {
      Shard& to = *shards_[(s + 1) % S];
      for (const Handoff& h : shards_[s]->outbox.drain()) {
        to.inbox.push(h);
      }
    }
  }

  const edge::WorkloadTrace& trace_;
  const core::AcceleratorLibrary& library_;
  ShardConfig shard_cfg_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// FNV-1a 64-bit accumulator.
struct Fnv {
  std::uint64_t h = 1469598103934665603ULL;
  void bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h = (h ^ b[i]) * 1099511628211ULL;
    }
  }
  void i64(std::int64_t v) { bytes(&v, sizeof v); }
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    bytes(&bits, sizeof bits);
  }
  void series(const sim::TimeSeries& s) {
    f64(s.interval_s);
    i64(static_cast<std::int64_t>(s.values.size()));
    for (double v : s.values) {
      f64(v);
    }
  }
};

}  // namespace

ShardedMetrics run_sharded_fleet(const edge::WorkloadTrace& trace,
                                 const core::AcceleratorLibrary& library,
                                 const fleet::FleetConfig& config, const ShardConfig& shard,
                                 const std::string& router_name, std::uint64_t seed) {
  Runner runner(trace, library, config, shard, router_name, seed);
  return runner.run();
}

std::string metrics_fingerprint(const fleet::FleetMetrics& m) {
  Fnv f;
  f.i64(m.arrived);
  f.i64(m.dispatched);
  f.i64(m.ingress_lost);
  f.i64(m.ingress_backlog);
  f.i64(m.redispatched);
  f.i64(m.hedged);
  f.i64(m.hedge_wasted);
  f.i64(m.quarantines);
  f.i64(m.rejoins);
  f.i64(m.processed);
  f.i64(m.device_lost);
  f.f64(m.qoe_accuracy_sum);
  f.f64(m.energy_j);
  f.f64(m.duration_s);
  f.i64(m.model_switches);
  f.i64(m.reconfigurations);
  f.i64(m.repartitions);
  f.f64(m.tail_latency_p95_s);
  f.series(m.workload_series);
  f.series(m.loss_series);
  f.series(m.qoe_series);
  f.series(m.backlog_series);
  f.i64(m.faults.total_injected());
  f.i64(m.faults.stalls_recovered);
  f.i64(m.faults.overload_sheds);
  f.f64(m.faults.time_degraded_s);
  f.i64(m.forecast.forecasts);
  f.f64(m.forecast.abs_pct_error_sum);
  f.i64(m.integrity.upsets_injected);
  f.i64(m.integrity.wrong_frames);
  f.i64(m.integrity.canaries_sent);
  f.i64(m.integrity.canaries_failed);
  f.i64(m.integrity.detections);
  f.i64(m.integrity.false_alarms);
  f.i64(m.integrity.scrubs);
  f.i64(m.integrity.repairs);
  f.f64(m.integrity.corrupt_time_s);
  f.f64(m.integrity.detection_latency_sum_s);
  f.i64(m.detection.frames_scored);
  f.i64(m.detection.true_positives);
  f.i64(m.detection.false_positives);
  f.i64(m.detection.missed_objects);
  f.i64(m.detection.nms_pairs_total);
  f.f64(m.detection.map_proxy_sum);
  f.f64(m.detection.postprocess_s);
  f.i64(m.e2e_latency.count());
  f.f64(m.e2e_latency.sum_s());
  for (std::int64_t b : m.e2e_latency.buckets()) {
    f.i64(b);
  }
  for (const auto& d : m.devices) {
    f.bytes(d.name.data(), d.name.size());
    f.i64(d.metrics.arrived);
    f.i64(d.metrics.processed);
    f.i64(d.metrics.lost);
    f.f64(d.metrics.energy_j);
    f.i64(d.queued_at_end);
    f.i64(d.quarantines);
    f.i64(static_cast<std::int64_t>(d.metrics.model_switches));
    f.i64(static_cast<std::int64_t>(d.metrics.reconfigurations));
  }
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(f.h));
  return std::string(buf);
}

}  // namespace adaflow::shard
